package bate

import (
	"context"
	"fmt"
	"math"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/lp"
	"bate/internal/lp/batch"
	"bate/internal/metrics"
	"bate/internal/parallel"
	"bate/internal/scenario"
	"bate/internal/topo"
)

// The batched matrix-form scheduling path: instead of lowering Eq. 7
// through lp.Problem one constraint object at a time, the LP is
// assembled directly into the batch package's blocked form — all
// scenario classes of a (demand, pair) become one dense
// (classes × tunnels) block sharing the pair's tunnel columns — and
// solved by the first-order PDHG backend in matrix-vector passes.
//
// A first-order solution is ε-feasible, not vertex-exact, so the
// assembly shaves every link capacity by a small margin and a
// polishing pass afterwards upscales each demand's flows uniformly
// until its Eq. 1 delivery and Eq. 3-4 relaxed availability hold
// exactly (the margin guarantees the upscale never breaches a true
// capacity). Rounds where the solver fails to converge or polishing
// cannot close the gap fall back to the simplex path transparently.

var (
	batchRounds    = metrics.NewCounter("bate.batch_rounds")
	batchFellBack  = metrics.NewCounter("bate.batch_fallbacks")
	batchUpscales  = metrics.NewCounter("bate.batch_polish_upscales")
	batchSmallSkip = metrics.NewCounter("bate.batch_small_skips")
)

const (
	// batchCapMargin is the relative capacity shave the batch assembly
	// applies (caps · (1-margin)); polishing spends at most 90% of it
	// on upscales, so polished loads stay strictly under true caps.
	batchCapMargin = 5e-4
	// batchEpsFeas is the solver's per-row relative feasibility
	// tolerance: each row's violation stays under this fraction of the
	// row's own scale, so a demand row's deficit is at most ~2·eps of
	// its bandwidth — an order of magnitude inside the upscale headroom
	// polishing has (0.9·batchCapMargin).
	batchEpsFeas = 1e-5
	// batchEpsGap is the relative duality-gap tolerance. PDHG closes
	// feasibility quickly but crawls on the last digits of the gap for
	// degenerate (tie-broken) objectives, so the gap tolerance is
	// looser: a 1e-4 relative gap is far inside the 1e-3 objective
	// tolerance the crosscheck suite certifies against the simplex.
	batchEpsGap = 1e-4
	// batchEpsDual is the relative dual-feasibility tolerance. The gap
	// already certifies optimality and polishing retires primal debt,
	// so a dual-residual tail crawl (degenerate reduced costs pinned
	// near zero) is not worth tens of thousands of extra iterations.
	batchEpsDual = 1e-5
	// batchMaxIters is the PDHG iteration cap for scheduling rounds.
	// Large deep-tree instances land at ~20k iterations; the cap keeps
	// 3x headroom so timing jitter in the restart schedule can't tip a
	// production round into the simplex fallback.
	batchMaxIters = 75000
	// batchDualTol is the relative inexactness budget a batch-solved
	// subproblem reports to the partition stitcher alongside its
	// objective and capacity duals: the certified duality-gap and
	// dual-residual tolerances plus the largest relative objective
	// shift polishing can add. The stitching lower bound widens by
	// this factor instead of consuming first-order duals as exact.
	batchDualTol = batchEpsGap + batchEpsDual + 0.9*batchCapMargin
)

// scheduleBatch runs one batched matrix-form scheduling round at
// full capacities. handled=false means the round should be
// (re)solved on the simplex path: the instance is under the size
// threshold, the first-order solve did not converge, or polishing
// could not certify feasibility. handled=true with a non-nil error
// is a real abort (Cancel fired).
func scheduleBatch(in *alloc.Input, opts ScheduleOptions, stats *ScheduleStats) (alloc.Allocation, bool, error) {
	a, _, _, handled, err := scheduleBatchCaps(in, alloc.FullCapacities(in), opts, stats, false)
	return a, handled, err
}

// scheduleBatchCaps is the batched round against caller-chosen
// per-link capacities — full capacities for a global round, residual
// capacities for a partition region sub-solve. Accepted solutions
// pass the same gate in either case: capacity shave at assembly,
// feasibility polish, and a load check against caps. When wantDuals
// is set it also returns each link's capacity-row dual in the revised
// engine's convention (≤ 0 for the minimization) plus the polished
// objective value; callers consuming those must budget for
// batchDualTol relative inexactness.
func scheduleBatchCaps(in *alloc.Input, caps []float64, opts ScheduleOptions, stats *ScheduleStats, wantDuals bool) (alloc.Allocation, map[topo.LinkID]float64, float64, bool, error) {
	targeted := make([]*demand.Demand, 0, len(in.Demands))
	for _, d := range in.Demands {
		if d.Target > 0 {
			targeted = append(targeted, d)
		}
		// A positive-bandwidth pair with no tunnels has no batch-form
		// row (the blocked layout cannot express 0 ≥ bw); the simplex
		// delivers the exact infeasibility verdict.
		for pi, pr := range d.Pairs {
			if pr.Bandwidth > 0 && len(in.TunnelsFor(d, pi)) == 0 {
				return nil, nil, 0, false, nil
			}
		}
	}
	classes := make([][]scenario.Class, len(targeted))
	pool := parallel.Default()
	err := pool.ForEach(context.Background(), len(targeted), func(i int) error {
		cls, hit, cerr := scenario.CachedClassesFor(in.Net, opts.Groups, in.AllTunnelsFor(targeted[i]), opts.MaxFail)
		if cerr != nil {
			return fmt.Errorf("bate: classes for demand %d: %w", targeted[i].ID, cerr)
		}
		classes[i] = cls
		_ = hit
		return nil
	})
	if err != nil {
		return nil, nil, 0, true, err
	}
	if stats != nil {
		// Re-consult the cache serially for hit accounting (all warm now).
		for _, d := range targeted {
			_, hit, _ := scenario.CachedClassesFor(in.Net, opts.Groups, in.AllTunnelsFor(d), opts.MaxFail)
			if hit {
				stats.ClassCacheHits++
			} else {
				stats.ClassCacheMisses++
			}
		}
	}

	f, flowCol, bCol0, capRow := assembleScheduleForm(in, targeted, classes, caps)
	minRows := opts.BatchMinRows
	if minRows <= 0 {
		minRows = lp.DefaultBatchMinRows
	}
	if f.NumRows < minRows {
		batchSmallSkip.Inc()
		return nil, nil, 0, false, nil
	}
	batchRounds.Inc()
	res := batch.Solve(f, batch.Options{
		MaxIters: batchMaxIters,
		EpsFeas:  batchEpsFeas, EpsDual: batchEpsDual, EpsGap: batchEpsGap,
		Cancel: opts.Cancel,
	})
	if stats != nil {
		stats.Variables = f.NumCols
		stats.Constraints = f.NumRows
		stats.Iterations = res.Iterations
	}
	switch res.Status {
	case batch.Aborted:
		return nil, nil, 0, true, fmt.Errorf("bate: schedule: %w", lp.ErrAborted)
	case batch.IterLimit:
		batchFellBack.Inc()
		return nil, nil, 0, false, nil
	}

	a := extractBatchAlloc(in, flowCol, res.X)
	if !polishBatchAlloc(in, targeted, classes, a) {
		batchFellBack.Inc()
		return nil, nil, 0, false, nil
	}
	// Check the polished loads against the solve's own capacities (the
	// residual capacities for a region sub-solve, where links may hold
	// far less than their physical capacity). Half the verification
	// tolerance used by the property tests, so a polished round can
	// never be within rounding of their threshold.
	loads := a.LinkLoads(in)
	for l, c := range caps {
		if loads[l] > c+5e-7 {
			batchFellBack.Inc()
			return nil, nil, 0, false, nil
		}
	}
	var duals map[topo.LinkID]float64
	obj := 0.0
	if wantDuals {
		// Capacity rows were lowered LE→GE (negated), so the user-sense
		// dual of link e's row is -Y[row] — same convention as the
		// revised engine's Solution.Dual on a minimization.
		duals = make(map[topo.LinkID]float64, len(capRow))
		for e, row := range capRow {
			duals[e] = -res.Y[row]
		}
		// Objective of the *polished* point: unit cost on every flow,
		// the assembly's tie-break costs on the B columns (whose values
		// polishing never moves).
		for _, rows := range a {
			for _, r := range rows {
				for _, fl := range r {
					obj += fl
				}
			}
		}
		for j := bCol0; j < f.NumCols; j++ {
			obj += f.C[j] * res.X[j]
		}
	}
	return a, duals, obj, true, nil
}

// assembleScheduleForm lowers the Eq. 7 scheduling LP into the
// blocked matrix form: flow columns in AddFlowVarsIndexed order, then
// one B column per (targeted demand, class); capacity rows (shaved by
// batchCapMargin), Eq. 1 demand rows, and per-(demand, pair) Eq. 3-4
// availability blocks over all scenario classes — one shared tunnel
// column pattern per block, each class row carrying its own B column
// as the scattered extra entry — plus the Σ p·B ≥ β row per demand.
// It returns the form, the flow column index per (demand id, pair,
// tunnel), the first B column, and each link's capacity-row index
// (links no tunnel rides have no row and are absent).
func assembleScheduleForm(in *alloc.Input, targeted []*demand.Demand, classes [][]scenario.Class, caps []float64) (*batch.Form, map[int][][]int, int, map[topo.LinkID]int) {
	// Column layout.
	nFlow := 0
	flowCol := make(map[int][][]int, len(in.Demands))
	linkCols := make([][]int, in.Net.NumLinks())
	for _, d := range in.Demands {
		rows := make([][]int, len(d.Pairs))
		for pi := range d.Pairs {
			tunnels := in.TunnelsFor(d, pi)
			rows[pi] = make([]int, len(tunnels))
			for ti, t := range tunnels {
				rows[pi][ti] = nFlow
				for _, e := range t.Links {
					linkCols[e] = append(linkCols[e], nFlow)
				}
				nFlow++
			}
		}
		flowCol[d.ID] = rows
	}
	bCol0 := nFlow
	nB := 0
	for i := range targeted {
		nB += len(classes[i])
	}

	b := batch.NewBuilder(nFlow + nB)
	for j := 0; j < nFlow; j++ {
		b.SetCost(j, 1)
	}
	bc := bCol0
	for i, d := range targeted {
		bonus := availabilityBonus(d)
		for _, cls := range classes[i] {
			b.SetCost(bc, -bonus*cls.Prob)
			b.SetBounds(bc, 0, 1)
			bc++
		}
	}

	// Capacity rows, shaved by the polish margin.
	ones := make([]float64, 0, 64)
	capRow := make(map[topo.LinkID]int)
	for _, l := range in.Net.Links() {
		cols := linkCols[l.ID]
		if len(cols) == 0 {
			continue
		}
		for len(ones) < len(cols) {
			ones = append(ones, 1)
		}
		capRow[l.ID] = b.AddRowLE(cols, ones[:len(cols)], caps[l.ID]*(1-batchCapMargin))
	}
	// Eq. 1 demand rows.
	for _, d := range in.Demands {
		for pi, pr := range d.Pairs {
			if pr.Bandwidth <= 0 {
				continue
			}
			cols := flowCol[d.ID][pi]
			for len(ones) < len(cols) {
				ones = append(ones, 1)
			}
			b.AddRow(batch.GE, cols, ones[:len(cols)], pr.Bandwidth)
		}
	}
	// Eq. 3-4 availability blocks.
	bc = bCol0
	for i, d := range targeted {
		cls := classes[i]
		nc := len(cls)
		bit0 := 0
		for pi, pr := range d.Pairs {
			nt := len(in.TunnelsFor(d, pi))
			if pr.Bandwidth <= 0 {
				bit0 += nt
				continue
			}
			cols := flowCol[d.ID][pi]
			vals := make([]float64, nc*nt)
			xcol := make([]int, nc)
			xval := make([]float64, nc)
			for ci, c := range cls {
				for ti := 0; ti < nt; ti++ {
					if c.TunnelUp(bit0 + ti) {
						vals[ci*nt+ti] = 1
					}
				}
				xcol[ci] = bc + ci
				xval[ci] = -pr.Bandwidth
			}
			b.AddBlockGE(cols, vals, xcol, xval, make([]float64, nc))
			bit0 += nt
		}
		availCols := make([]int, nc)
		probs := make([]float64, nc)
		for ci, c := range cls {
			availCols[ci] = bc + ci
			probs[ci] = c.Prob
		}
		b.AddRow(batch.GE, availCols, probs, d.Target)
		bc += nc
	}
	return b.Build(), flowCol, bCol0, capRow
}

// extractBatchAlloc reads the flow columns into an Allocation,
// dropping sub-epsilon noise exactly like alloc.FlowVars.Extract.
func extractBatchAlloc(in *alloc.Input, flowCol map[int][][]int, x []float64) alloc.Allocation {
	a := make(alloc.Allocation, len(flowCol))
	for id, rows := range flowCol {
		nr := make([][]float64, len(rows))
		for pi, r := range rows {
			nr[pi] = make([]float64, len(r))
			for ti, col := range r {
				if v := x[col]; v > 1e-7 {
					nr[pi][ti] = v
				}
			}
		}
		a[id] = nr
	}
	return a
}

// polishBatchAlloc retires the first-order solution's ε-feasibility
// debt at the allocation level: per demand, flows are scaled up
// uniformly (never down) until every pair delivers its full Eq. 1
// bandwidth and the Eq. 3-4 relaxed availability meets the target
// with slack over the verification tolerance. The scale is capped at
// 90% of the capacity margin the assembly shaved, so polished loads
// remain under true capacities. Returns false when the cap is not
// enough — the caller's cue to fall back to the simplex path.
func polishBatchAlloc(in *alloc.Input, targeted []*demand.Demand, classes [][]scenario.Class, a alloc.Allocation) bool {
	sMax := 1 + 0.9*batchCapMargin
	classIdx := make(map[int]int, len(targeted))
	for i, d := range targeted {
		classIdx[d.ID] = i
	}
	for _, d := range in.Demands {
		rows := a[d.ID]
		// Pair delivery deficits (Eq. 1).
		s := 1.0
		for pi, pr := range d.Pairs {
			if pr.Bandwidth <= 0 {
				continue
			}
			sum := 0.0
			for _, f := range rows[pi] {
				sum += f
			}
			if sum <= 0 {
				return false // nothing to scale; simplex must decide
			}
			if need := pr.Bandwidth / sum; need > s {
				s = need
			}
		}
		// Availability (Eq. 3-4), targeted demands only.
		if ti, ok := classIdx[d.ID]; ok {
			cls := classes[ti]
			// The availability function is nondecreasing in the uniform
			// scale; find the smallest scale in [s, sMax] with margin
			// over the -1e-6 verification tolerance.
			const slack = 5e-7
			if batchAvailAt(in, d, cls, rows, sMax) < d.Target-slack {
				return false
			}
			if batchAvailAt(in, d, cls, rows, s) < d.Target-slack {
				lo, hi := s, sMax
				for k := 0; k < 50; k++ {
					mid := (lo + hi) / 2
					if batchAvailAt(in, d, cls, rows, mid) < d.Target-slack {
						lo = mid
					} else {
						hi = mid
					}
				}
				s = hi
			}
		}
		if s > sMax {
			return false
		}
		if s > 1 {
			batchUpscales.Inc()
			for pi := range rows {
				for ti := range rows[pi] {
					rows[pi][ti] *= s
				}
			}
		}
	}
	return true
}

// batchAvailAt evaluates the relaxed availability of demand d when
// every flow is scaled by s: Σ_class p · min over pairs of
// min(1, s·delivered/b).
func batchAvailAt(in *alloc.Input, d *demand.Demand, cls []scenario.Class, rows [][]float64, s float64) float64 {
	total := 0.0
	for _, c := range cls {
		bmin := 1.0
		bit := 0
		for pi, pr := range d.Pairs {
			nt := len(in.TunnelsFor(d, pi))
			delivered := 0.0
			for ti := 0; ti < nt; ti++ {
				if c.TunnelUp(bit) {
					delivered += rows[pi][ti]
				}
				bit++
			}
			if pr.Bandwidth > 0 {
				if r := s * delivered / pr.Bandwidth; r < bmin {
					bmin = r
				}
			}
		}
		if bmin > 0 {
			total += c.Prob * bmin
		}
	}
	return math.Min(1, total)
}
