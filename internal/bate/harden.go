package bate

import (
	"fmt"
	"sort"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/lp"
	"bate/internal/scenario"
)

// Harden turns the B-relaxation of Eq. 3-4 into the hard guarantee the
// paper promises (§1: "the negotiated bandwidth must be met"): it
// posterior-checks every demand's true achieved availability under the
// allocation a, and for any demand the relaxation over-promised it
// re-solves the scheduling LP with explicit full-delivery constraints
// on a greedily chosen qualified-class set (most probable classes
// first until their mass reaches β_d).
//
// It returns the original allocation when every demand already holds,
// the hardened allocation otherwise, and lp.ErrInfeasible when no
// hard-guarantee allocation exists for the demand set.
func Harden(in *alloc.Input, opts ScheduleOptions, a alloc.Allocation) (alloc.Allocation, error) {
	if opts.MaxFail <= 0 {
		opts.MaxFail = 2
	}
	var weak []*demand.Demand
	for _, d := range in.Demands {
		ok, err := alloc.SatisfiesGroups(in, a, d, opts.MaxFail, opts.Groups)
		if err != nil {
			return nil, err
		}
		if !ok {
			weak = append(weak, d)
		}
	}
	if len(weak) == 0 {
		return a, nil
	}
	hard := make(map[int]bool, len(weak))
	for _, d := range weak {
		hard[d.ID] = true
	}
	return scheduleHardened(in, opts, hard)
}

// ScheduleHard runs Schedule and then Harden, returning a hard-
// guarantee allocation or an error.
func ScheduleHard(in *alloc.Input, opts ScheduleOptions) (alloc.Allocation, error) {
	a, _, err := Schedule(in, opts)
	if err != nil {
		return nil, err
	}
	return Harden(in, opts, a)
}

// scheduleHardened rebuilds the scheduling LP with hard full-delivery
// constraints for the flagged demands and the usual relaxation for the
// rest.
func scheduleHardened(in *alloc.Input, opts ScheduleOptions, hard map[int]bool) (alloc.Allocation, error) {
	p := lp.NewProblem()
	fv := alloc.AddFlowVars(p, in, alloc.FullCapacities(in), nil)
	for _, rows := range fv {
		for _, r := range rows {
			for _, v := range r {
				p.SetCost(v, 1)
			}
		}
	}
	for _, d := range in.Demands {
		for pi, pr := range d.Pairs {
			if pr.Bandwidth <= 0 {
				continue
			}
			terms := make([]lp.Term, 0, len(fv[d.ID][pi]))
			for _, v := range fv[d.ID][pi] {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
			p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: pr.Bandwidth})
		}
	}
	soft := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels}
	for _, d := range in.Demands {
		if !hard[d.ID] {
			soft.Demands = append(soft.Demands, d)
		}
	}
	if err := addAvailabilityGroupedStats(p, soft, fv, opts.MaxFail, opts.Groups, nil); err != nil {
		return nil, err
	}
	for _, d := range in.Demands {
		if !hard[d.ID] || d.Target <= 0 {
			continue
		}
		if err := addHardGuarantee(p, in, fv, d, opts.MaxFail, opts.Groups); err != nil {
			return nil, err
		}
	}
	sol, err := p.SolveOpts(lp.Options{Engine: opts.Engine})
	if err != nil {
		return nil, fmt.Errorf("bate: hardened schedule: %w", err)
	}
	return fv.Extract(sol), nil
}

// addHardGuarantee requires full delivery of d in the most probable
// tunnel-state classes until their cumulative probability reaches the
// demand's target. Returns lp.ErrInfeasible if even the total class
// mass under the pruning depth cannot reach the target.
func addHardGuarantee(p *lp.Problem, in *alloc.Input, fv alloc.FlowVars, d *demand.Demand, maxFail int, groups []scenario.RiskGroup) error {
	cached, _, err := scenario.CachedClassesFor(in.Net, groups, in.AllTunnelsFor(d), maxFail)
	if err != nil {
		return err
	}
	// The cached slice is shared and read-only; copy before sorting.
	classes := append([]scenario.Class(nil), cached...)
	sort.Slice(classes, func(i, j int) bool {
		if classes[i].Prob != classes[j].Prob {
			return classes[i].Prob > classes[j].Prob
		}
		return classes[i].UpMask > classes[j].UpMask
	})
	total := 0.0
	for _, c := range classes {
		total += c.Prob
	}
	if total < d.Target {
		return lp.ErrInfeasible
	}
	mass := 0.0
	for _, cls := range classes {
		if mass >= d.Target {
			break
		}
		mass += cls.Prob
		bit := 0
		for pi, pr := range d.Pairs {
			tunnels := in.TunnelsFor(d, pi)
			if pr.Bandwidth <= 0 {
				bit += len(tunnels)
				continue
			}
			terms := make([]lp.Term, 0, len(tunnels))
			for ti := range tunnels {
				if cls.TunnelUp(bit) {
					terms = append(terms, lp.Term{Var: fv[d.ID][pi][ti], Coef: 1})
				}
				bit++
			}
			if len(terms) == 0 {
				// A required class with no surviving tunnel cannot be
				// covered at all.
				return lp.ErrInfeasible
			}
			p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: pr.Bandwidth})
		}
	}
	return nil
}
