package bate

import (
	"math/rand"
	"testing"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/parallel"
)

// forcePool pins the process-wide pool at n workers for one test so
// the speculation path is exercised even on single-CPU machines, where
// the auto-sized pool degrades AdmitBatch to the plain serial loop.
func forcePool(t *testing.T, n int) {
	t.Helper()
	parallel.SetDefaultSize(n)
	t.Cleanup(func() { parallel.SetDefaultSize(0) })
}

// serialAdmitReference is the plain one-at-a-time admission loop that
// AdmitBatch must reproduce decision-for-decision, byte-for-byte.
func serialAdmitReference(t *testing.T, in *alloc.Input, current alloc.Allocation, admitted []*demand.Demand, batch []*demand.Demand, maxFail int) []*AdmissionResult {
	t.Helper()
	cur := make(alloc.Allocation, len(current))
	for id, rows := range current {
		cur[id] = rows
	}
	adm := append([]*demand.Demand(nil), admitted...)
	out := make([]*AdmissionResult, 0, len(batch))
	for _, d := range batch {
		live := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels, Demands: adm}
		res, err := Admit(live, cur, adm, d, maxFail)
		if err != nil {
			t.Fatalf("serial admit of %d: %v", d.ID, err)
		}
		out = append(out, res)
		if res.Admitted {
			cur[d.ID] = res.NewAlloc
			adm = append(adm, d)
		}
	}
	return out
}

func randomTestbedBatch(t *testing.T, in *alloc.Input, rng *rand.Rand, firstID, n int) []*demand.Demand {
	t.Helper()
	names := []string{"DC1", "DC2", "DC4", "DC5"}
	batch := make([]*demand.Demand, 0, n)
	for i := 0; i < n; i++ {
		src := names[rng.Intn(len(names))]
		dst := names[rng.Intn(len(names))]
		for dst == src {
			dst = names[rng.Intn(len(names))]
		}
		bw := 100 + float64(rng.Intn(8))*100
		target := []float64{0, 0.9, 0.99, 0.999}[rng.Intn(4)]
		batch = append(batch, testbedDemand(t, in, firstID+i, src, dst, bw, target))
	}
	return batch
}

// TestAdmitBatchMatchesSerial drives randomized batches through both
// the parallel batch path and the serial reference and requires
// identical admit/reject decisions, methods, and allocation bytes.
func TestAdmitBatchMatchesSerial(t *testing.T) {
	forcePool(t, 4)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		in := testbedInput(t, nil)
		var admitted []*demand.Demand
		current := alloc.Allocation{}
		nextID := 0
		// Several consecutive batches so later ones start from a
		// populated admitted set.
		for round := 0; round < 3; round++ {
			batch := randomTestbedBatch(t, in, rng, nextID, 2+rng.Intn(5))
			nextID += len(batch)
			want := serialAdmitReference(t, in, current, admitted, batch, 2)

			liveIn := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels, Demands: admitted}
			got, err := AdmitBatch(liveIn, current, admitted, batch, BatchOptions{MaxFail: 2})
			if err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
			if len(got.Decisions) != len(batch) {
				t.Fatalf("decided %d of %d", len(got.Decisions), len(batch))
			}
			for i, dec := range got.Decisions {
				w := want[i]
				if dec.Result.Admitted != w.Admitted || dec.Result.Method != w.Method {
					t.Fatalf("trial %d round %d demand %d: got (%v,%s) want (%v,%s) spec=%v",
						trial, round, dec.Demand.ID, dec.Result.Admitted, dec.Result.Method,
						w.Admitted, w.Method, dec.Speculative)
				}
				if !allocRowsEqual(dec.Result.NewAlloc, w.NewAlloc) {
					t.Fatalf("trial %d round %d demand %d: allocation bytes diverge", trial, round, dec.Demand.ID)
				}
			}
			// Advance state exactly as a caller would.
			for _, dec := range got.Decisions {
				if dec.Result.Admitted {
					current[dec.Demand.ID] = dec.Result.NewAlloc
					admitted = append(admitted, dec.Demand)
				}
			}
		}
	}
}

func allocRowsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestAdmitBatchStopAfterConjecture forces a conjecture admit and
// checks the batch stops there, deferring the undecided tail.
func TestAdmitBatchStopAfterConjecture(t *testing.T) {
	forcePool(t, 4)
	// Occupy the network with a deliberately wasteful fixed allocation
	// (the TestAdmitConjectureStep setup) so the batch's first demand
	// fails the fixed check but passes the Algorithm 1 conjecture.
	in0 := testbedInput(t, nil)
	base := testbedDemand(t, in0, 0, "DC1", "DC3", 600, 0.95)
	in := testbedInput(t, []*demand.Demand{base})
	current := alloc.New(in)
	for ti := range in.TunnelsFor(base, 0) {
		current[base.ID][0][ti] = 900
	}
	admitted := []*demand.Demand{base}

	batch := []*demand.Demand{
		testbedDemand(t, in, 1, "DC1", "DC4", 700, 0.95),
		testbedDemand(t, in, 2, "DC2", "DC5", 100, 0.9),
		testbedDemand(t, in, 3, "DC5", "DC6", 100, 0.9),
	}
	liveIn := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels, Demands: admitted}
	got, err := AdmitBatch(liveIn, current, admitted, batch, BatchOptions{MaxFail: 2, StopAfterConjecture: true})
	if err != nil {
		t.Fatal(err)
	}
	conjAt := -1
	for i, dec := range got.Decisions {
		if dec.Result.Method == MethodConjecture {
			conjAt = i
			break
		}
	}
	if conjAt < 0 {
		t.Fatalf("no conjecture admit; decisions: %+v", got.Decisions)
	}
	if conjAt != len(got.Decisions)-1 {
		t.Fatalf("decisions continued past the conjecture admit at %d (total %d)", conjAt, len(got.Decisions))
	}
	if len(got.Decisions)+len(got.Deferred) != len(batch) {
		t.Fatalf("decided %d + deferred %d != batch %d", len(got.Decisions), len(got.Deferred), len(batch))
	}
	for i, d := range got.Deferred {
		if d != batch[conjAt+1+i] {
			t.Fatalf("deferred[%d] is demand %d, want %d", i, d.ID, batch[conjAt+1+i].ID)
		}
	}
}

// TestAdmitBatchEmptyAndAllocations covers the trivial cases.
func TestAdmitBatchEmptyAndAllocations(t *testing.T) {
	in := testbedInput(t, nil)
	got, err := AdmitBatch(in, alloc.Allocation{}, nil, nil, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Decisions) != 0 || len(got.Deferred) != 0 {
		t.Fatalf("empty batch produced %+v", got)
	}

	batch := []*demand.Demand{
		testbedDemand(t, in, 0, "DC1", "DC4", 400, 0.9),
		testbedDemand(t, in, 1, "DC2", "DC5", 400, 0.99),
	}
	got, err = AdmitBatch(in, alloc.Allocation{}, nil, batch, BatchOptions{MaxFail: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, dec := range got.Decisions {
		if !dec.Result.Admitted {
			continue
		}
		rows, ok := got.Allocations[dec.Demand.ID]
		if !ok {
			t.Fatalf("admitted demand %d missing from Allocations", dec.Demand.ID)
		}
		if !allocRowsEqual(rows, dec.Result.NewAlloc) {
			t.Fatalf("Allocations[%d] differs from the decision's NewAlloc", dec.Demand.ID)
		}
	}
}
