package bate

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/lp"
	"bate/internal/partition"
	"bate/internal/routing"
	"bate/internal/topo"
)

// partitionTestWorkload builds count single-pair demands with modest
// bandwidths and a 0.9 target (feasible on every test topology).
func partitionTestWorkload(net *topo.Network, count int, rng *rand.Rand) []*demand.Demand {
	n := net.NumNodes()
	ds := make([]*demand.Demand, 0, count)
	for i := 0; i < count; i++ {
		src := topo.NodeID(rng.Intn(n))
		dst := topo.NodeID(rng.Intn(n))
		if src == dst {
			dst = topo.NodeID((int(dst) + 1) % n)
		}
		ds = append(ds, &demand.Demand{
			ID:     i,
			Pairs:  []demand.PairDemand{{Src: src, Dst: dst, Bandwidth: 50 + float64(rng.Intn(100))}},
			Target: 0.9,
		})
	}
	return ds
}

// checkPartitionProperties asserts the partitioned schedule's safety
// invariants against the global solve on one input: capacity is never
// violated, every demand still meets its availability target, and the
// objective stays within the configured gap of the global optimum.
func checkPartitionProperties(t *testing.T, name string, in *alloc.Input, k int) {
	t.Helper()
	gOpts := ScheduleOptions{MaxFail: 2, Engine: lp.EngineRevised}
	global, _, err := Schedule(in, gOpts)
	if err != nil {
		t.Fatalf("%s: global schedule: %v", name, err)
	}
	pOpts := gOpts
	pOpts.Partition = &partition.Options{Regions: k}
	part, stats, err := Schedule(in, pOpts)
	if err != nil {
		t.Fatalf("%s: partitioned schedule (k=%d): %v", name, k, err)
	}
	if err := part.CheckCapacity(in, 1e-6); err != nil {
		t.Fatalf("%s: partitioned (k=%d): %v", name, k, err)
	}
	for _, d := range in.Demands {
		av, err := alloc.RelaxedAvailability(in, part, d, gOpts.MaxFail)
		if err != nil {
			t.Fatalf("%s: availability of demand %d: %v", name, d.ID, err)
		}
		if av < d.Target-1e-6 {
			t.Fatalf("%s: partitioned (k=%d): demand %d availability %.6f < target %.6f (partitioned=%v)",
				name, k, d.ID, av, d.Target, stats.Partitioned)
		}
	}
	gTotal, pTotal := global.Total(), part.Total()
	// Eq. 7 minimizes total allocated bandwidth, so the stitched
	// objective can only exceed the global optimum — by at most the gap
	// threshold (fallback rounds are the global solve and match it).
	if maxTotal := gTotal*(1+partition.DefaultGapThreshold) + 1e-6; pTotal > maxTotal {
		t.Fatalf("%s: partitioned (k=%d) objective %.3f above %.3f (global %.3f, partitioned=%v, bound %.4f)",
			name, k, pTotal, maxTotal, gTotal, stats.Partitioned, stats.GapBound)
	}
}

// TestPartitionedScheduleProperties sweeps the paper topologies plus 50
// seeded random meshes.
func TestPartitionedScheduleProperties(t *testing.T) {
	for _, name := range []string{"B4", "ATT", "FITI"} {
		net, err := topo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(len(name))))
		in := &alloc.Input{
			Net:     net,
			Tunnels: routing.Compute(net, routing.KShortest, 3),
			Demands: partitionTestWorkload(net, 6, rng),
		}
		checkPartitionProperties(t, name, in, 3)
	}
	for seed := 0; seed < 50; seed++ {
		name := fmt.Sprintf("FatRandom#%d", seed)
		net := topo.FatRandom(name, 12, 3, uint64(seed)*0x9E3779B9+7)
		rng := rand.New(rand.NewSource(int64(seed)))
		in := &alloc.Input{
			Net:     net,
			Tunnels: routing.Compute(net, routing.KShortest, 3),
			Demands: partitionTestWorkload(net, 5, rng),
		}
		checkPartitionProperties(t, name, in, 3)
	}
}

// TestPartitionedScheduleK1MatchesGlobal: Regions <= 1 must take the
// exact global code path, byte-identical allocation included.
func TestPartitionedScheduleK1MatchesGlobal(t *testing.T) {
	net := topo.RingOfRegions("K1", 3, 6, 40000, 20000, 11)
	rng := rand.New(rand.NewSource(1))
	in := &alloc.Input{
		Net:     net,
		Tunnels: routing.Compute(net, routing.KShortest, 3),
		Demands: partitionTestWorkload(net, 8, rng),
	}
	gOpts := ScheduleOptions{MaxFail: 2, Engine: lp.EngineRevised}
	global, _, err := Schedule(in, gOpts)
	if err != nil {
		t.Fatal(err)
	}
	pOpts := gOpts
	pOpts.Partition = &partition.Options{Regions: 1}
	part, stats, err := Schedule(in, pOpts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partitioned {
		t.Fatalf("k=1 should not partition: stats %+v", stats)
	}
	if !reflect.DeepEqual(global, part) {
		t.Fatal("k=1 allocation differs from the global solve")
	}
}

// TestPartitionedScheduleActuallyPartitions: on a ring-of-regions graph
// with purely local demands the decomposition must engage (no silent
// always-fallback) and report its stats.
func TestPartitionedScheduleActuallyPartitions(t *testing.T) {
	net := topo.RingOfRegions("P3", 3, 6, 40000, 20000, 13)
	tunnels := routing.Compute(net, routing.KShortest, 3)
	name := func(s string) topo.NodeID {
		id, ok := net.NodeByName(s)
		if !ok {
			t.Fatalf("no node %s", s)
		}
		return id
	}
	var ds []*demand.Demand
	for r := 1; r <= 3; r++ {
		ds = append(ds, &demand.Demand{
			ID: r - 1,
			Pairs: []demand.PairDemand{{
				Src: name(fmt.Sprintf("R%dN1", r)), Dst: name(fmt.Sprintf("R%dN4", r)), Bandwidth: 200}},
			Target: 0.9,
		})
	}
	// One cross demand to exercise the coordination solve.
	ds = append(ds, &demand.Demand{
		ID:     3,
		Pairs:  []demand.PairDemand{{Src: name("R1N2"), Dst: name("R2N5"), Bandwidth: 150}},
		Target: 0.9,
	})
	in := &alloc.Input{Net: net, Tunnels: tunnels, Demands: ds}
	opts := ScheduleOptions{MaxFail: 2, Engine: lp.EngineRevised,
		Partition: &partition.Options{Regions: 3}}
	a, stats, err := Schedule(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partitioned {
		t.Fatalf("expected a partitioned round, got fallback: %+v", stats)
	}
	if stats.Regions != 3 {
		t.Fatalf("Regions = %d, want 3", stats.Regions)
	}
	if stats.CutDemands != 1 {
		t.Fatalf("CutDemands = %d, want 1", stats.CutDemands)
	}
	if err := a.CheckCapacity(in, 1e-6); err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		av, err := alloc.RelaxedAvailability(in, a, d, 2)
		if err != nil {
			t.Fatal(err)
		}
		if av < d.Target-1e-6 {
			t.Fatalf("demand %d availability %.6f < %.6f", d.ID, av, d.Target)
		}
	}
}
