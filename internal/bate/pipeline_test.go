package bate

import (
	"errors"
	"testing"
	"time"

	"bate/internal/demand"
	"bate/internal/topo"
)

func TestRecoverBackupHit(t *testing.T) {
	in := testbedInput(t, nil)
	in.Demands = []*demand.Demand{
		testbedDemand(t, in, 1, "DC1", "DC3", 400, 0.99),
		testbedDemand(t, in, 2, "DC2", "DC6", 300, 0.95),
	}
	bs, err := PrecomputeBackups(in, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	down := []topo.LinkID{in.Net.Links()[0].ID}
	r, stage, err := Recover(in, down, RecoverOptions{Backups: bs})
	if err != nil {
		t.Fatal(err)
	}
	if stage != StageBackup {
		t.Fatalf("stage = %v, want backup (failure set is covered)", stage)
	}
	want, _ := bs.For(down)
	if r != want {
		t.Fatal("backup hit did not return the precomputed result")
	}
}

func TestRecoverFallsToOptimal(t *testing.T) {
	in := testbedInput(t, nil)
	in.Demands = []*demand.Demand{
		testbedDemand(t, in, 1, "DC1", "DC3", 400, 0.99),
	}
	// Depth-1 backups cannot cover a two-link failure.
	bs, err := PrecomputeBackups(in, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	links := in.Net.Links()
	down := []topo.LinkID{links[0].ID, links[1].ID}
	r, stage, err := Recover(in, down, RecoverOptions{Backups: bs, Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if stage != StageOptimal {
		t.Fatalf("stage = %v, want optimal", stage)
	}
	if r == nil || r.Alloc == nil {
		t.Fatal("nil recovery result")
	}
}

func TestRecoverGateForcesGreedy(t *testing.T) {
	in := testbedInput(t, nil)
	in.Demands = []*demand.Demand{
		testbedDemand(t, in, 1, "DC1", "DC3", 400, 0.99),
		testbedDemand(t, in, 2, "DC2", "DC6", 300, 0.95),
	}
	denied := errors.New("budget exhausted")
	gated := 0
	before := recFallback.Load()
	r, stage, err := Recover(in, []topo.LinkID{in.Net.Links()[2].ID, in.Net.Links()[3].ID}, RecoverOptions{
		Gate: func(op string) error {
			if op != "recover" {
				t.Fatalf("gate consulted for %q, want recover", op)
			}
			gated++
			return denied
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gated != 1 {
		t.Fatalf("gate consulted %d times, want 1", gated)
	}
	if stage != StageGreedy {
		t.Fatalf("stage = %v, want greedy (optimal gated)", stage)
	}
	if r == nil {
		t.Fatal("greedy floor returned nil — recovery must never be absent")
	}
	// Two rungs down: backup miss + gated optimal.
	if got := recFallback.Load() - before; got != 2 {
		t.Fatalf("recovery_fallback advanced by %d, want 2", got)
	}
}

func TestRecoverDeadlineExhaustedSkipsOptimal(t *testing.T) {
	in := testbedInput(t, nil)
	in.Demands = []*demand.Demand{
		testbedDemand(t, in, 1, "DC1", "DC3", 400, 0.99),
	}
	// A deadline so tight that by the time the optimal stage is reached
	// its budget is gone: the greedy floor still answers.
	r, stage, err := Recover(in, []topo.LinkID{in.Net.Links()[0].ID, in.Net.Links()[1].ID}, RecoverOptions{
		Deadline: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stage != StageGreedy {
		t.Fatalf("stage = %v, want greedy", stage)
	}
	if r == nil {
		t.Fatal("nil recovery result")
	}
}

func TestScheduleGate(t *testing.T) {
	in := fig2Input(t)
	denied := errors.New("no solver budget")
	_, _, err := Schedule(in, ScheduleOptions{MaxFail: 2, Gate: func(op string) error {
		if op != "schedule" {
			t.Fatalf("gate consulted for %q, want schedule", op)
		}
		return denied
	}})
	if !errors.Is(err, denied) {
		t.Fatalf("gated schedule returned %v, want wrapped denial", err)
	}
	// A passing gate leaves the solve untouched.
	a, _, err := Schedule(in, ScheduleOptions{MaxFail: 2, Gate: func(string) error { return nil }})
	if err != nil || a == nil {
		t.Fatalf("open gate: %v", err)
	}
}
