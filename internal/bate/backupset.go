package bate

import (
	"fmt"
	"sort"
	"strings"

	"bate/internal/alloc"
	"bate/internal/topo"
)

// BackupSet holds precomputed greedy recovery allocations for failure
// combinations up to a given depth (§3.4 footnote: the single-link
// backup scheme "can be easily extended to deal with concurrent
// failures"). Combinations are precomputed most-probable-first so a
// bounded budget covers the failures that actually happen.
type BackupSet struct {
	Depth   int
	byKey   map[string]*RecoveryResult
	skipped int
}

// comboKey canonicalizes a failure set.
func comboKey(down []topo.LinkID) string {
	ids := append([]topo.LinkID(nil), down...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}

// PrecomputeBackups computes greedy recovery allocations for every
// combination of at most depth concurrent link failures, capped at
// maxCombos combinations chosen in decreasing probability (the product
// of the failed links' failure probabilities). maxCombos <= 0 means
// no cap.
func PrecomputeBackups(in *alloc.Input, depth, maxCombos int) (*BackupSet, error) {
	if depth < 1 {
		depth = 1
	}
	type combo struct {
		links []topo.LinkID
		prob  float64
	}
	var combos []combo
	links := in.Net.Links()
	var rec func(start int, cur []topo.LinkID, prob float64)
	rec = func(start int, cur []topo.LinkID, prob float64) {
		if len(cur) > 0 {
			combos = append(combos, combo{links: append([]topo.LinkID(nil), cur...), prob: prob})
		}
		if len(cur) == depth {
			return
		}
		for i := start; i < len(links); i++ {
			rec(i+1, append(cur, links[i].ID), prob*links[i].FailProb)
		}
	}
	rec(0, nil, 1)
	sort.SliceStable(combos, func(i, j int) bool {
		// Shallower combos first at equal probability; otherwise most
		// probable first.
		if combos[i].prob != combos[j].prob {
			return combos[i].prob > combos[j].prob
		}
		return len(combos[i].links) < len(combos[j].links)
	})
	bs := &BackupSet{Depth: depth, byKey: make(map[string]*RecoveryResult)}
	for i, c := range combos {
		if maxCombos > 0 && i >= maxCombos {
			bs.skipped = len(combos) - i
			break
		}
		r, err := RecoverGreedy(in, c.links)
		if err != nil {
			return nil, fmt.Errorf("bate: backup for %v: %w", c.links, err)
		}
		bs.byKey[comboKey(c.links)] = r
	}
	return bs, nil
}

// For returns the precomputed recovery for a failure set, if covered.
func (bs *BackupSet) For(down []topo.LinkID) (*RecoveryResult, bool) {
	if bs == nil || len(down) == 0 {
		return nil, false
	}
	r, ok := bs.byKey[comboKey(down)]
	return r, ok
}

// Len returns the number of precomputed combinations.
func (bs *BackupSet) Len() int { return len(bs.byKey) }

// Skipped reports how many combinations the budget excluded.
func (bs *BackupSet) Skipped() int { return bs.skipped }
