// Package bate implements the paper's primary contribution: the BATE
// traffic-engineering framework for hard bandwidth-availability
// guarantees over inter-DC WANs. It provides the three core
// components of §3 — admission control (§3.2), traffic scheduling
// (§3.3) and failure recovery (§3.4) — on top of the lp, scenario,
// routing and alloc substrates.
package bate

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/lp"
	"bate/internal/metrics"
	"bate/internal/parallel"
	"bate/internal/partition"
	"bate/internal/scenario"
	"bate/internal/topo"
)

// schedules counts scheduling-LP solves process-wide; paired with the
// scenario cache counters it shows how much class work each round
// amortized.
var schedules = metrics.NewCounter("bate.schedules")

// ScheduleMode selects how the scheduling LP represents failure
// scenarios.
type ScheduleMode int8

const (
	// Aggregated groups scenarios into per-demand tunnel-state classes
	// (exact, and exponentially smaller; the production mode).
	Aggregated ScheduleMode = iota
	// Enumerated instantiates one B variable per demand per explicit
	// pruned scenario, exactly as written in Eq. 3-4. Used by the
	// Fig. 16/17 benchmarks, whose cost grows with the scenario count.
	Enumerated
)

// ScheduleOptions tunes the traffic-scheduling LP (Eq. 7).
type ScheduleOptions struct {
	// MaxFail is the pruning depth y: at most this many concurrent
	// link failures are modeled; everything beyond is the aggregated
	// unqualified residual (Fig. 3). The paper sweeps 1..4.
	MaxFail int
	Mode    ScheduleMode
	// Groups are shared-risk link groups (correlated failures), an
	// extension beyond the paper's independence assumption (§3.1
	// footnote 3). Only the Aggregated mode supports them.
	Groups []scenario.RiskGroup
	// Engine selects the LP engine. The zero value (lp.EngineAuto)
	// keeps the dense reference tableau; lp.EngineRevised opts into the
	// sparse revised simplex (required for warm starts);
	// lp.EngineBatch routes large Aggregated-mode rounds through the
	// batched matrix-form assembly and the first-order PDHG backend
	// (small rounds and non-converging rounds fall back to the
	// revised simplex, keeping small instances byte-identical).
	Engine lp.Engine
	// BatchMinRows overrides the batch engine's size threshold
	// (0 = lp.DefaultBatchMinRows; 1 forces batching — tests only).
	BatchMinRows int
	// Cancel, when non-nil, is polled inside the LP iteration loops;
	// a non-nil return aborts the round with lp.ErrAborted (the caller
	// keeps its current allocation). Deadline contexts and the chaos
	// mid-solve watcher hook in here.
	Cancel func() error
	// Gate, when non-nil, is consulted ("schedule") before the solve;
	// an error aborts it. The chaos solver-budget front hooks in here,
	// and callers must treat the error as "keep the current
	// allocation", not as fatal. A partitioned round consults it once,
	// not per subproblem.
	Gate func(op string) error
	// Partition, when non-nil with Regions > 1, enables hierarchical
	// scheduling: the topology splits into regions whose availability
	// LPs solve concurrently, stitched by a coordination solve for the
	// cross-region demands. Rounds the decomposition declines (span or
	// gap-bound violations, infeasible subproblems) fall back to the
	// global LP transparently. Aggregated mode only.
	Partition *partition.Options
}

// ScheduleStats reports the size and cost of a scheduling solve.
type ScheduleStats struct {
	Variables   int
	Constraints int
	Iterations  int
	Elapsed     time.Duration
	// ClassCacheHits/Misses count the scenario-class lookups this
	// solve served from the memoizing cache vs computed fresh.
	ClassCacheHits   int
	ClassCacheMisses int
	// PoolWorkers is the parallel worker bound constraint assembly ran
	// under (1 = serial).
	PoolWorkers int
	// WarmStarted reports whether the solve reused a cached basis from
	// a previous round (revised engine only) instead of a cold two-phase
	// start. For a partitioned round it means every subproblem did.
	WarmStarted bool
	// Partitioned reports whether this round was served by the
	// hierarchical decomposition; the fields below describe it.
	Partitioned bool
	// Regions is the region count of the partition used.
	Regions int
	// CutDemands counts demands handled by the coordination solve.
	CutDemands int
	// GapBound is the proved relative bound on the stitched solution's
	// distance from the global optimum.
	GapBound float64
	// PartitionFallback reports that partitioning was requested but
	// this round fell back to the global solve.
	PartitionFallback bool
}

// Schedule solves the traffic-scheduling LP of Eq. 7: it finds the
// cheapest bandwidth allocation (minimum Σ f^t_d) that gives every
// admitted demand its full bandwidth (Eq. 1) and meets every
// availability target in the B-relaxed sense of Eq. 3-4, subject to
// link capacities (Eq. 6). It returns lp.ErrInfeasible when the
// admitted set cannot be satisfied.
func Schedule(in *alloc.Input, opts ScheduleOptions) (alloc.Allocation, *ScheduleStats, error) {
	return scheduleWarm(in, opts, nil, nil, nil)
}

// Scheduler runs successive scheduling solves with the revised LP
// engine, warm-starting each round from the previous round's optimal
// basis. The time simulator re-solves a near-identical LP every
// scheduling epoch — the admitted set changes incrementally — where a
// reused basis typically needs a short dual-simplex cleanup instead of
// a cold two-phase solve. When the admitted set changes shape
// (different variable or constraint counts) the stale basis is ignored
// and the solve cold-starts automatically. A Scheduler is not safe for
// concurrent use.
type Scheduler struct {
	basis  *lp.Basis
	pstate *partition.State
}

// NewScheduler returns a Scheduler with no cached basis.
func NewScheduler() *Scheduler { return &Scheduler{pstate: &partition.State{}} }

// Schedule is Schedule with cross-call basis reuse.
func (s *Scheduler) Schedule(in *alloc.Input, opts ScheduleOptions) (alloc.Allocation, *ScheduleStats, error) {
	if opts.Engine == lp.EngineAuto {
		opts.Engine = lp.EngineRevised
	}
	if s.pstate == nil {
		s.pstate = &partition.State{}
	}
	return scheduleWarm(in, opts, s.basis, &s.basis, s.pstate)
}

// scheduleWarm builds and solves the scheduling LP, optionally seeding
// the revised engine with a warm basis; basisOut, when non-nil,
// receives the new optimal basis for the caller to cache. pst carries
// the partitioned path's warm-start state (nil for one-shot solves).
func scheduleWarm(in *alloc.Input, opts ScheduleOptions, warm *lp.Basis, basisOut **lp.Basis, pst *partition.State) (alloc.Allocation, *ScheduleStats, error) {
	if opts.MaxFail <= 0 {
		opts.MaxFail = 2
	}
	if opts.Gate != nil {
		if err := opts.Gate("schedule"); err != nil {
			return nil, nil, fmt.Errorf("bate: schedule gated: %w", err)
		}
	}
	start := time.Now()
	fellBack := false
	if opts.Partition != nil && opts.Partition.Regions > 1 && opts.Mode == Aggregated {
		res, err := partition.Schedule(in, *opts.Partition, subSolver(opts), pst)
		var fb *partition.FallbackError
		switch {
		case err == nil:
			schedules.Inc()
			stats := &ScheduleStats{
				Variables:        res.Stats.Variables,
				Constraints:      res.Stats.Constraints,
				Iterations:       res.Stats.Iterations,
				Elapsed:          time.Since(start),
				ClassCacheHits:   res.Stats.ClassCacheHits,
				ClassCacheMisses: res.Stats.ClassCacheMisses,
				PoolWorkers:      parallel.Default().Size(),
				WarmStarted:      res.Stats.WarmStarted,
				Partitioned:      true,
				Regions:          res.Stats.Regions,
				CutDemands:       res.Stats.CutDemands,
				GapBound:         res.Stats.GapBound,
			}
			return res.Alloc, stats, nil
		case errors.As(err, &fb):
			fellBack = true // global solve below decides the round
		default:
			return nil, nil, fmt.Errorf("bate: partitioned schedule: %w", err)
		}
	}
	if opts.Engine == lp.EngineBatch {
		if opts.Mode == Aggregated {
			stats := &ScheduleStats{PoolWorkers: parallel.Default().Size(), PartitionFallback: fellBack}
			a, handled, err := scheduleBatch(in, opts, stats)
			if handled {
				if err != nil {
					return nil, stats, err
				}
				schedules.Inc()
				stats.Elapsed = time.Since(start)
				if basisOut != nil {
					*basisOut = nil // first-order solves carry no basis
				}
				return a, stats, nil
			}
		}
		// Any round the batched path did not fully serve — a
		// non-Aggregated mode (no batch assembly exists for it), a
		// too-small instance, or an unconverged/unpolishable solve —
		// re-solves on the revised simplex. The generic EngineBatch
		// lowering in package lp has no shave/polish acceptance gate,
		// so scheduling rounds must never reach it.
		opts.Engine = lp.EngineRevised
	}
	p := lp.NewProblem()
	stats := &ScheduleStats{PoolWorkers: parallel.Default().Size(), PartitionFallback: fellBack}
	fv, _, err := buildScheduleLP(p, in, opts, alloc.FullCapacities(in), stats)
	if err != nil {
		return nil, nil, err
	}
	schedules.Inc()
	stats.Variables, stats.Constraints = p.NumVariables(), p.NumConstraints()
	sol, err := p.SolveOpts(lp.Options{Engine: opts.Engine, Warm: warm, Cancel: opts.Cancel, BatchMinRows: opts.BatchMinRows})
	stats.Elapsed = time.Since(start)
	if sol != nil {
		stats.Iterations = sol.Iterations
		stats.WarmStarted = sol.WarmStarted
	}
	if err != nil {
		return nil, stats, fmt.Errorf("bate: schedule: %w", err)
	}
	if basisOut != nil {
		*basisOut = sol.Basis()
	}
	return fv.Extract(sol), stats, nil
}

// buildScheduleLP assembles the Eq. 7 scheduling LP — flow variables
// with capacity rows for the given per-link capacities, the Eq. 1
// demand rows, and the Eq. 3-4 availability rows — into p. It is
// shared by the global solve (full capacities), the partitioned
// subproblem solver (residual capacities over a demand subset) and
// LinkPrices. The returned map gives each link's capacity-row index
// for dual lookups. stats may be nil.
func buildScheduleLP(p *lp.Problem, in *alloc.Input, opts ScheduleOptions, caps []float64, stats *ScheduleStats) (alloc.FlowVars, map[topo.LinkID]int, error) {
	fv, capIdx := alloc.AddFlowVarsIndexed(p, in, caps, nil)
	// Objective: minimize total allocated bandwidth.
	for _, rows := range fv {
		for _, r := range rows {
			for _, v := range r {
				p.SetCost(v, 1)
			}
		}
	}
	// Eq. 1: full bandwidth for every pair of every admitted demand.
	for _, d := range in.Demands {
		for pi, pr := range d.Pairs {
			if pr.Bandwidth <= 0 {
				continue
			}
			terms := make([]lp.Term, 0, len(fv[d.ID][pi]))
			for _, v := range fv[d.ID][pi] {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
			p.AddConstraint(lp.Constraint{
				Name:  fmt.Sprintf("demand[d%d,p%d]", d.ID, pi),
				Terms: terms, Op: lp.GE, RHS: pr.Bandwidth,
			})
		}
	}
	var err error
	switch {
	case opts.Mode == Aggregated:
		err = addAvailabilityGroupedStats(p, in, fv, opts.MaxFail, opts.Groups, stats)
	case opts.Mode == Enumerated && len(opts.Groups) > 0:
		err = fmt.Errorf("bate: risk groups require the Aggregated mode")
	case opts.Mode == Enumerated:
		err = addAvailabilityEnumerated(p, in, fv, opts.MaxFail)
	default:
		err = fmt.Errorf("bate: unknown schedule mode %d", opts.Mode)
	}
	if err != nil {
		return nil, nil, err
	}
	return fv, capIdx, nil
}

// subSolver adapts the scheduling-LP formulation to the partition
// package's SubSolver callback: one subproblem is the same LP over a
// demand subset with caller-chosen capacities, solved on the revised
// engine so region bases warm-start across rounds. When the round
// opted into lp.EngineBatch, large subproblems go through the same
// gated batch round the global path uses — capacity shave, polish,
// and a load check against the residual capacities, falling back to
// the simplex per region on any failure — and report batchDualTol so
// the stitching gap bound widens for the first-order duals instead
// of consuming them as exact (sub-threshold regions quietly stay on
// the simplex).
func subSolver(opts ScheduleOptions) partition.SubSolver {
	useBatch := opts.Engine == lp.EngineBatch && opts.Mode == Aggregated
	return func(sub *alloc.Input, caps []float64, warm *lp.Basis) (*partition.SubResult, error) {
		if useBatch {
			bstats := &ScheduleStats{}
			a, duals, obj, handled, err := scheduleBatchCaps(sub, caps, opts, bstats, true)
			if err != nil {
				return nil, err
			}
			if handled {
				return &partition.SubResult{
					Alloc:            a,
					Objective:        obj,
					CapDuals:         duals,
					DualTol:          batchDualTol,
					Variables:        bstats.Variables,
					Constraints:      bstats.Constraints,
					Iterations:       bstats.Iterations,
					ClassCacheHits:   bstats.ClassCacheHits,
					ClassCacheMisses: bstats.ClassCacheMisses,
				}, nil
			}
			// Sub-threshold, unconverged or unpolishable: this region
			// re-solves exactly on the revised simplex below.
		}
		p := lp.NewProblem()
		stats := &ScheduleStats{}
		fv, capIdx, err := buildScheduleLP(p, sub, opts, caps, stats)
		if err != nil {
			return nil, err
		}
		sol, err := p.SolveOpts(lp.Options{Engine: lp.EngineRevised, Warm: warm, Cancel: opts.Cancel})
		if err != nil {
			return nil, err
		}
		duals := make(map[topo.LinkID]float64, len(capIdx))
		for e, idx := range capIdx {
			duals[e] = sol.Dual(idx)
		}
		return &partition.SubResult{
			Alloc:            fv.Extract(sol),
			Objective:        sol.Objective,
			CapDuals:         duals,
			Basis:            sol.Basis(),
			Variables:        p.NumVariables(),
			Constraints:      p.NumConstraints(),
			Iterations:       sol.Iterations,
			WarmStarted:      sol.WarmStarted,
			ClassCacheHits:   stats.ClassCacheHits,
			ClassCacheMisses: stats.ClassCacheMisses,
		}, nil
	}
}

// availabilityBonus returns the small negative cost placed on each B
// variable. The Eq. 3-4 relaxation leaves the minimum-bandwidth
// objective indifferent between traffic splits of equal size; the
// bonus breaks those ties toward placements that maximize true
// availability, weighted by how stringent the demand's target is
// (1/(1-β)), so that high-β demands win the reliable tunnels when
// demands compete — the Table 3 matching. The 1e-3 scale and the
// weight cap keep the bonus rate strictly below 1 objective unit per
// Mbps, so the LP can never profitably allocate extra bandwidth just
// to farm the bonus.
func availabilityBonus(d *demand.Demand) float64 {
	w := 900.0
	if d.Target < 1 {
		if s := 1 / (1 - d.Target); s < w {
			w = s
		}
	}
	return 1e-3 * d.TotalBandwidth() * w
}

// addAvailabilityAggregated adds Eq. 3-4 using per-demand tunnel-state
// classes: one B variable per (demand, class), B ∈ [0,1],
// delivered_{k,class} ≥ b_k·B, and Σ p_class·B ≥ β_d.
func addAvailabilityAggregated(p *lp.Problem, in *alloc.Input, fv alloc.FlowVars, maxFail int) error {
	return addAvailabilityGroupedStats(p, in, fv, maxFail, nil, nil)
}

// addAvailabilityGroupedStats is the aggregated formulation under the
// correlated (SRLG) failure model; nil groups are the independent
// case. The expensive pieces — scenario-class computation (memoized)
// and constraint-row construction — fan out over demands on the
// parallel pool; variables and constraints are then installed
// serially in the exact order the serial assembly used, so the LP
// (and therefore the simplex pivot sequence and the solution bytes)
// is identical at any worker count. stats may be nil.
func addAvailabilityGroupedStats(p *lp.Problem, in *alloc.Input, fv alloc.FlowVars, maxFail int, groups []scenario.RiskGroup, stats *ScheduleStats) error {
	targeted := make([]*demand.Demand, 0, len(in.Demands))
	for _, d := range in.Demands {
		if d.Target > 0 {
			targeted = append(targeted, d)
		}
	}
	if len(targeted) == 0 {
		return nil
	}
	type assembly struct {
		classes []scenario.Class
		hit     bool
		bv      []lp.VarID
		rows    []lp.Constraint
	}
	jobs := make([]assembly, len(targeted))
	pool := parallel.Default()
	ctx := context.Background()

	// Phase 1: scenario classes per demand, concurrent and memoized.
	err := pool.ForEach(ctx, len(targeted), func(i int) error {
		classes, hit, err := scenario.CachedClassesFor(in.Net, groups, in.AllTunnelsFor(targeted[i]), maxFail)
		if err != nil {
			return fmt.Errorf("bate: classes for demand %d: %w", targeted[i].ID, err)
		}
		jobs[i].classes, jobs[i].hit = classes, hit
		return nil
	})
	if err != nil {
		return err
	}

	// Phase 2 (serial): allocate the B variables in (demand, class)
	// order — the same VarID sequence the serial assembly produces.
	for i, d := range targeted {
		bonus := availabilityBonus(d)
		jobs[i].bv = make([]lp.VarID, len(jobs[i].classes))
		for ci, cls := range jobs[i].classes {
			jobs[i].bv[ci] = p.AddVariable(fmt.Sprintf("B[d%d,c%d]", d.ID, ci), 0, 1, -bonus*cls.Prob)
		}
		if stats != nil {
			if jobs[i].hit {
				stats.ClassCacheHits++
			} else {
				stats.ClassCacheMisses++
			}
		}
	}

	// Phase 3: build the constraint rows concurrently; rows are pure
	// data referencing the pre-allocated variable ids.
	err = pool.ForEach(ctx, len(targeted), func(i int) error {
		jobs[i].rows = availabilityRows(in, targeted[i], jobs[i].classes, jobs[i].bv, fv)
		return nil
	})
	if err != nil {
		return err
	}

	// Phase 4 (serial): install the rows in demand order.
	for i := range jobs {
		for _, c := range jobs[i].rows {
			p.AddConstraint(c)
		}
	}
	return nil
}

// availabilityRows builds demand d's Eq. 3-4 constraint rows: per
// class, one delivered ≥ b·B row per pair; then the Σ p·B ≥ β row.
// The returned rows are pure data, safe to build concurrently.
func availabilityRows(in *alloc.Input, d *demand.Demand, classes []scenario.Class, bv []lp.VarID, fv alloc.FlowVars) []lp.Constraint {
	rows := make([]lp.Constraint, 0, len(classes)*len(d.Pairs)+1)
	availTerms := make([]lp.Term, 0, len(classes))
	for ci, cls := range classes {
		availTerms = append(availTerms, lp.Term{Var: bv[ci], Coef: cls.Prob})
		bit := 0
		for pi, pr := range d.Pairs {
			tunnels := in.TunnelsFor(d, pi)
			if pr.Bandwidth <= 0 {
				bit += len(tunnels)
				continue
			}
			terms := make([]lp.Term, 0, len(tunnels)+1)
			for ti := range tunnels {
				if cls.TunnelUp(bit) {
					terms = append(terms, lp.Term{Var: fv[d.ID][pi][ti], Coef: 1})
				}
				bit++
			}
			terms = append(terms, lp.Term{Var: bv[ci], Coef: -pr.Bandwidth})
			rows = append(rows, lp.Constraint{Terms: terms, Op: lp.GE, RHS: 0})
		}
	}
	rows = append(rows, lp.Constraint{
		Name:  fmt.Sprintf("avail[d%d]", d.ID),
		Terms: availTerms, Op: lp.GE, RHS: d.Target,
	})
	return rows
}

// addAvailabilityEnumerated adds Eq. 3-4 with one B variable per
// explicit pruned scenario, following the paper's formulation
// verbatim. Exponentially larger but numerically identical to the
// aggregated form. Like the aggregated path, row construction fans
// out over demands while variables and rows are installed serially in
// the original order.
func addAvailabilityEnumerated(p *lp.Problem, in *alloc.Input, fv alloc.FlowVars, maxFail int) error {
	set, err := scenario.Enumerate(in.Net, maxFail)
	if err != nil {
		return err
	}
	targeted := make([]*demand.Demand, 0, len(in.Demands))
	for _, d := range in.Demands {
		if d.Target > 0 {
			targeted = append(targeted, d)
		}
	}
	if len(targeted) == 0 {
		return nil
	}
	bvs := make([][]lp.VarID, len(targeted))
	for i, d := range targeted {
		bonus := availabilityBonus(d)
		bvs[i] = make([]lp.VarID, len(set.Scenarios))
		for zi, z := range set.Scenarios {
			bvs[i][zi] = p.AddVariable(fmt.Sprintf("B[d%d,z%d]", d.ID, zi), 0, 1, -bonus*z.Prob)
		}
	}
	rowsPer := make([][]lp.Constraint, len(targeted))
	err = parallel.Default().ForEach(context.Background(), len(targeted), func(i int) error {
		rowsPer[i] = enumeratedRows(in, targeted[i], set, bvs[i], fv)
		return nil
	})
	if err != nil {
		return err
	}
	for i := range rowsPer {
		for _, c := range rowsPer[i] {
			p.AddConstraint(c)
		}
	}
	return nil
}

// enumeratedRows builds demand d's per-scenario Eq. 3-4 rows plus the
// availability row, as pure data.
func enumeratedRows(in *alloc.Input, d *demand.Demand, set *scenario.Set, bv []lp.VarID, fv alloc.FlowVars) []lp.Constraint {
	rows := make([]lp.Constraint, 0, len(set.Scenarios)*len(d.Pairs)+1)
	availTerms := make([]lp.Term, 0, len(set.Scenarios))
	for zi, z := range set.Scenarios {
		availTerms = append(availTerms, lp.Term{Var: bv[zi], Coef: z.Prob})
		for pi, pr := range d.Pairs {
			if pr.Bandwidth <= 0 {
				continue
			}
			tunnels := in.TunnelsFor(d, pi)
			terms := make([]lp.Term, 0, len(tunnels)+1)
			for ti, t := range tunnels {
				if z.TunnelUp(t) {
					terms = append(terms, lp.Term{Var: fv[d.ID][pi][ti], Coef: 1})
				}
			}
			terms = append(terms, lp.Term{Var: bv[zi], Coef: -pr.Bandwidth})
			rows = append(rows, lp.Constraint{Terms: terms, Op: lp.GE, RHS: 0})
		}
	}
	rows = append(rows, lp.Constraint{Terms: availTerms, Op: lp.GE, RHS: d.Target})
	return rows
}

// LinkPrices solves the scheduling LP and returns each link's shadow
// price: the marginal reduction in total allocated bandwidth per extra
// Mbps of capacity on that link (≤ 0 for the minimization; reported
// negated so a larger number means a more valuable upgrade). Links the
// optimum does not saturate price at zero. Operators use this to rank
// WAN capacity upgrades.
func LinkPrices(in *alloc.Input, opts ScheduleOptions) (map[topo.LinkID]float64, error) {
	if opts.MaxFail <= 0 {
		opts.MaxFail = 2
	}
	p := lp.NewProblem()
	opts.Mode = Aggregated
	if opts.Engine == lp.EngineBatch {
		// Shadow prices are capacity-row duals; first-order duals are
		// only eps-approximate, so price queries stay on the simplex.
		opts.Engine = lp.EngineRevised
	}
	_, capIdx, err := buildScheduleLP(p, in, opts, alloc.FullCapacities(in), nil)
	if err != nil {
		return nil, err
	}
	sol, err := p.SolveOpts(lp.Options{Engine: opts.Engine})
	if err != nil {
		return nil, fmt.Errorf("bate: link prices: %w", err)
	}
	prices := make(map[topo.LinkID]float64, len(capIdx))
	for link, idx := range capIdx {
		prices[link] = -sol.Dual(idx)
	}
	return prices, nil
}
