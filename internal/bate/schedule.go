// Package bate implements the paper's primary contribution: the BATE
// traffic-engineering framework for hard bandwidth-availability
// guarantees over inter-DC WANs. It provides the three core
// components of §3 — admission control (§3.2), traffic scheduling
// (§3.3) and failure recovery (§3.4) — on top of the lp, scenario,
// routing and alloc substrates.
package bate

import (
	"fmt"
	"time"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/lp"
	"bate/internal/scenario"
	"bate/internal/topo"
)

// ScheduleMode selects how the scheduling LP represents failure
// scenarios.
type ScheduleMode int8

const (
	// Aggregated groups scenarios into per-demand tunnel-state classes
	// (exact, and exponentially smaller; the production mode).
	Aggregated ScheduleMode = iota
	// Enumerated instantiates one B variable per demand per explicit
	// pruned scenario, exactly as written in Eq. 3-4. Used by the
	// Fig. 16/17 benchmarks, whose cost grows with the scenario count.
	Enumerated
)

// ScheduleOptions tunes the traffic-scheduling LP (Eq. 7).
type ScheduleOptions struct {
	// MaxFail is the pruning depth y: at most this many concurrent
	// link failures are modeled; everything beyond is the aggregated
	// unqualified residual (Fig. 3). The paper sweeps 1..4.
	MaxFail int
	Mode    ScheduleMode
	// Groups are shared-risk link groups (correlated failures), an
	// extension beyond the paper's independence assumption (§3.1
	// footnote 3). Only the Aggregated mode supports them.
	Groups []scenario.RiskGroup
}

// ScheduleStats reports the size and cost of a scheduling solve.
type ScheduleStats struct {
	Variables   int
	Constraints int
	Iterations  int
	Elapsed     time.Duration
}

// Schedule solves the traffic-scheduling LP of Eq. 7: it finds the
// cheapest bandwidth allocation (minimum Σ f^t_d) that gives every
// admitted demand its full bandwidth (Eq. 1) and meets every
// availability target in the B-relaxed sense of Eq. 3-4, subject to
// link capacities (Eq. 6). It returns lp.ErrInfeasible when the
// admitted set cannot be satisfied.
func Schedule(in *alloc.Input, opts ScheduleOptions) (alloc.Allocation, *ScheduleStats, error) {
	if opts.MaxFail <= 0 {
		opts.MaxFail = 2
	}
	start := time.Now()
	p := lp.NewProblem()
	fv := alloc.AddFlowVars(p, in, alloc.FullCapacities(in), nil)
	// Objective: minimize total allocated bandwidth.
	for _, rows := range fv {
		for _, r := range rows {
			for _, v := range r {
				p.SetCost(v, 1)
			}
		}
	}
	// Eq. 1: full bandwidth for every pair of every admitted demand.
	for _, d := range in.Demands {
		for pi, pr := range d.Pairs {
			if pr.Bandwidth <= 0 {
				continue
			}
			terms := make([]lp.Term, 0, len(fv[d.ID][pi]))
			for _, v := range fv[d.ID][pi] {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
			p.AddConstraint(lp.Constraint{
				Name:  fmt.Sprintf("demand[d%d,p%d]", d.ID, pi),
				Terms: terms, Op: lp.GE, RHS: pr.Bandwidth,
			})
		}
	}
	var err error
	switch {
	case opts.Mode == Aggregated:
		err = addAvailabilityGrouped(p, in, fv, opts.MaxFail, opts.Groups)
	case opts.Mode == Enumerated && len(opts.Groups) > 0:
		err = fmt.Errorf("bate: risk groups require the Aggregated mode")
	case opts.Mode == Enumerated:
		err = addAvailabilityEnumerated(p, in, fv, opts.MaxFail)
	default:
		err = fmt.Errorf("bate: unknown schedule mode %d", opts.Mode)
	}
	if err != nil {
		return nil, nil, err
	}
	stats := &ScheduleStats{Variables: p.NumVariables(), Constraints: p.NumConstraints()}
	sol, err := p.Solve()
	stats.Elapsed = time.Since(start)
	if sol != nil {
		stats.Iterations = sol.Iterations
	}
	if err != nil {
		return nil, stats, fmt.Errorf("bate: schedule: %w", err)
	}
	return fv.Extract(sol), stats, nil
}

// availabilityBonus returns the small negative cost placed on each B
// variable. The Eq. 3-4 relaxation leaves the minimum-bandwidth
// objective indifferent between traffic splits of equal size; the
// bonus breaks those ties toward placements that maximize true
// availability, weighted by how stringent the demand's target is
// (1/(1-β)), so that high-β demands win the reliable tunnels when
// demands compete — the Table 3 matching. The 1e-3 scale and the
// weight cap keep the bonus rate strictly below 1 objective unit per
// Mbps, so the LP can never profitably allocate extra bandwidth just
// to farm the bonus.
func availabilityBonus(d *demand.Demand) float64 {
	w := 900.0
	if d.Target < 1 {
		if s := 1 / (1 - d.Target); s < w {
			w = s
		}
	}
	return 1e-3 * d.TotalBandwidth() * w
}

// addAvailabilityAggregated adds Eq. 3-4 using per-demand tunnel-state
// classes: one B variable per (demand, class), B ∈ [0,1],
// delivered_{k,class} ≥ b_k·B, and Σ p_class·B ≥ β_d.
func addAvailabilityAggregated(p *lp.Problem, in *alloc.Input, fv alloc.FlowVars, maxFail int) error {
	return addAvailabilityGrouped(p, in, fv, maxFail, nil)
}

// addAvailabilityGrouped is the aggregated formulation under the
// correlated (SRLG) failure model; nil groups are the independent case.
func addAvailabilityGrouped(p *lp.Problem, in *alloc.Input, fv alloc.FlowVars, maxFail int, groups []scenario.RiskGroup) error {
	for _, d := range in.Demands {
		if d.Target <= 0 {
			continue
		}
		classes, err := scenario.ClassesForCorrelated(in.Net, groups, in.AllTunnelsFor(d), maxFail)
		if err != nil {
			return fmt.Errorf("bate: classes for demand %d: %w", d.ID, err)
		}
		bonus := availabilityBonus(d)
		availTerms := make([]lp.Term, 0, len(classes))
		for ci, cls := range classes {
			bv := p.AddVariable(fmt.Sprintf("B[d%d,c%d]", d.ID, ci), 0, 1, -bonus*cls.Prob)
			availTerms = append(availTerms, lp.Term{Var: bv, Coef: cls.Prob})
			bit := 0
			for pi, pr := range d.Pairs {
				tunnels := in.TunnelsFor(d, pi)
				if pr.Bandwidth <= 0 {
					bit += len(tunnels)
					continue
				}
				terms := make([]lp.Term, 0, len(tunnels)+1)
				for ti := range tunnels {
					if cls.TunnelUp(bit) {
						terms = append(terms, lp.Term{Var: fv[d.ID][pi][ti], Coef: 1})
					}
					bit++
				}
				terms = append(terms, lp.Term{Var: bv, Coef: -pr.Bandwidth})
				p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: 0})
			}
		}
		p.AddConstraint(lp.Constraint{
			Name:  fmt.Sprintf("avail[d%d]", d.ID),
			Terms: availTerms, Op: lp.GE, RHS: d.Target,
		})
	}
	return nil
}

// addAvailabilityEnumerated adds Eq. 3-4 with one B variable per
// explicit pruned scenario, following the paper's formulation
// verbatim. Exponentially larger but numerically identical to the
// aggregated form.
func addAvailabilityEnumerated(p *lp.Problem, in *alloc.Input, fv alloc.FlowVars, maxFail int) error {
	set, err := scenario.Enumerate(in.Net, maxFail)
	if err != nil {
		return err
	}
	for _, d := range in.Demands {
		if d.Target <= 0 {
			continue
		}
		bonus := availabilityBonus(d)
		availTerms := make([]lp.Term, 0, len(set.Scenarios))
		for zi, z := range set.Scenarios {
			bv := p.AddVariable(fmt.Sprintf("B[d%d,z%d]", d.ID, zi), 0, 1, -bonus*z.Prob)
			availTerms = append(availTerms, lp.Term{Var: bv, Coef: z.Prob})
			for pi, pr := range d.Pairs {
				if pr.Bandwidth <= 0 {
					continue
				}
				tunnels := in.TunnelsFor(d, pi)
				terms := make([]lp.Term, 0, len(tunnels)+1)
				for ti, t := range tunnels {
					if z.TunnelUp(t) {
						terms = append(terms, lp.Term{Var: fv[d.ID][pi][ti], Coef: 1})
					}
				}
				terms = append(terms, lp.Term{Var: bv, Coef: -pr.Bandwidth})
				p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: 0})
			}
		}
		p.AddConstraint(lp.Constraint{Terms: availTerms, Op: lp.GE, RHS: d.Target})
	}
	return nil
}

// LinkPrices solves the scheduling LP and returns each link's shadow
// price: the marginal reduction in total allocated bandwidth per extra
// Mbps of capacity on that link (≤ 0 for the minimization; reported
// negated so a larger number means a more valuable upgrade). Links the
// optimum does not saturate price at zero. Operators use this to rank
// WAN capacity upgrades.
func LinkPrices(in *alloc.Input, opts ScheduleOptions) (map[topo.LinkID]float64, error) {
	if opts.MaxFail <= 0 {
		opts.MaxFail = 2
	}
	p := lp.NewProblem()
	fv, capIdx := alloc.AddFlowVarsIndexed(p, in, alloc.FullCapacities(in), nil)
	for _, rows := range fv {
		for _, r := range rows {
			for _, v := range r {
				p.SetCost(v, 1)
			}
		}
	}
	for _, d := range in.Demands {
		for pi, pr := range d.Pairs {
			if pr.Bandwidth <= 0 {
				continue
			}
			terms := make([]lp.Term, 0, len(fv[d.ID][pi]))
			for _, v := range fv[d.ID][pi] {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
			p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: pr.Bandwidth})
		}
	}
	if err := addAvailabilityAggregated(p, in, fv, opts.MaxFail); err != nil {
		return nil, err
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, fmt.Errorf("bate: link prices: %w", err)
	}
	prices := make(map[topo.LinkID]float64, len(capIdx))
	for link, idx := range capIdx {
		prices[link] = -sol.Dual(idx)
	}
	return prices, nil
}
