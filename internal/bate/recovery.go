package bate

import (
	"fmt"
	"sort"
	"time"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/lp"
	"bate/internal/routing"
	"bate/internal/topo"
)

// RecoveryResult is the outcome of a failure-recovery computation for
// one failure scenario.
type RecoveryResult struct {
	// Alloc is the rerouted allocation over surviving tunnels.
	Alloc alloc.Allocation
	// FullProfit lists the demand IDs that keep their full profit
	// (every pair fully served; the set F of Algorithm 2).
	FullProfit map[int]bool
	// Profit is Σ r_d under the §3.4 refund model.
	Profit  float64
	Elapsed time.Duration
	// Nodes/Iterations record MILP effort (optimal only).
	Nodes, Iterations int
}

// profitOf computes Σ r_d given which demands are fully served.
func profitOf(demands []*demand.Demand, full map[int]bool) float64 {
	sum := 0.0
	for _, d := range demands {
		if full[d.ID] {
			sum += d.Charge
		} else {
			sum += (1 - d.RefundFrac) * d.Charge
		}
	}
	return sum
}

// downSet returns a lookup for failed links.
func downSet(failed []topo.LinkID) map[topo.LinkID]bool {
	m := make(map[topo.LinkID]bool, len(failed))
	for _, e := range failed {
		m[e] = true
	}
	return m
}

// tunnelUsable returns a predicate for tunnels that avoid every failed
// link (v^z_t).
func tunnelUsable(failed map[topo.LinkID]bool) func(routing.Tunnel) bool {
	return func(t routing.Tunnel) bool {
		for _, e := range t.Links {
			if failed[e] {
				return false
			}
		}
		return true
	}
}

// RecoverOptimal solves the failure-recovery MILP of Eq. 12: maximize
// total profit after refunding, rerouting traffic onto surviving
// tunnels under the failed-scenario capacities (Eq. 11).
func RecoverOptimal(in *alloc.Input, failed []topo.LinkID) (*RecoveryResult, error) {
	return RecoverOptimalOpts(in, failed, lp.Options{})
}

// RecoverOptimalOpts is RecoverOptimal with explicit solver options:
// lp.EngineRevised makes every branch-and-bound node warm-start from
// its parent's basis (ColdStart disables that, for ablation).
func RecoverOptimalOpts(in *alloc.Input, failed []topo.LinkID, opts lp.Options) (*RecoveryResult, error) {
	start := time.Now()
	down := downSet(failed)
	usable := tunnelUsable(down)

	p := lp.NewProblem()
	p.SetMaximize()
	caps := alloc.FullCapacities(in)
	for _, e := range failed {
		caps[e] = 0
	}
	fv := alloc.AddFlowVars(p, in, caps, usable)
	yv := make(map[int]lp.VarID, len(in.Demands))
	for _, d := range in.Demands {
		// y_d = 1 ⇔ no violation; profit g((1-μ) + μ·y). The constant
		// part is added after solving.
		y := p.AddBinary(fmt.Sprintf("y[d%d]", d.ID), d.Charge*d.RefundFrac)
		yv[d.ID] = y
		for pi, pr := range d.Pairs {
			if pr.Bandwidth <= 0 {
				continue
			}
			tunnels := in.TunnelsFor(d, pi)
			terms := make([]lp.Term, 0, len(tunnels)+1)
			for ti, t := range tunnels {
				if usable(t) {
					terms = append(terms, lp.Term{Var: fv[d.ID][pi][ti], Coef: 1})
				}
			}
			// R_dk ≥ y_d (Eq. 9, lower side; maximization never wants
			// y=1 without full delivery, so the big-M upper side is
			// unnecessary).
			terms = append(terms, lp.Term{Var: y, Coef: -pr.Bandwidth})
			p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.GE, RHS: 0})
		}
	}
	sol, err := p.SolveOpts(opts)
	switch {
	case err == nil:
	case sol != nil && sol.Status == lp.IterLimit && len(sol.Values()) > 0:
		// Node budget exhausted: keep the best incumbent found so
		// far, the same best-effort degradation optimal admission
		// uses under its MaxNodes cap.
	default:
		return nil, fmt.Errorf("bate: optimal recovery: %w", err)
	}
	res := &RecoveryResult{
		Alloc:      fv.Extract(sol),
		FullProfit: make(map[int]bool),
		Elapsed:    time.Since(start),
		Nodes:      sol.Nodes,
		Iterations: sol.Iterations,
	}
	for _, d := range in.Demands {
		if sol.Value(yv[d.ID]) > 0.5 {
			res.FullProfit[d.ID] = true
		}
	}
	res.Profit = profitOf(in.Demands, res.FullProfit)
	return res, nil
}

// RecoverGreedy implements Algorithm 2, the 2-approximation greedy for
// the failure-recovery MILP: demands are considered in non-increasing
// profit density g_d / Σ_k b^k_d; each is fully packed if the
// scenario's remaining capacity allows; on the first unfittable demand
// the algorithm either swaps the whole accepted set for that single
// demand (if it alone is worth more and fits in the fresh scenario
// capacity) or stops (Lemma 2: max{Σ g_i, g_{n+1}} ≥ OPT/2).
func RecoverGreedy(in *alloc.Input, failed []topo.LinkID) (*RecoveryResult, error) {
	start := time.Now()
	down := downSet(failed)
	usable := tunnelUsable(down)

	order := append([]*demand.Demand(nil), in.Demands...)
	sort.Slice(order, func(i, j int) bool {
		di := order[i].Charge / nonzero(order[i].TotalBandwidth())
		dj := order[j].Charge / nonzero(order[j].TotalBandwidth())
		if di != dj {
			return di > dj
		}
		return order[i].ID < order[j].ID
	})

	capRem := alloc.FullCapacities(in)
	for _, e := range failed {
		capRem[e] = 0
	}
	res := &RecoveryResult{Alloc: alloc.New(in), FullProfit: make(map[int]bool)}
	var acceptedCharge float64

	for _, d := range order {
		rows, ok := fitDemand(in, capRem, d, usable)
		if ok {
			res.Alloc[d.ID] = rows
			res.FullProfit[d.ID] = true
			acceptedCharge += d.Charge
			consume(in, capRem, d, rows)
			continue
		}
		// Line 11: the unfittable demand may alone be worth more than
		// everything accepted so far.
		if acceptedCharge < d.Charge {
			fresh := alloc.FullCapacities(in)
			for _, e := range failed {
				fresh[e] = 0
			}
			if rows, ok := fitDemand(in, fresh, d, usable); ok {
				res.Alloc = alloc.New(in)
				res.FullProfit = map[int]bool{d.ID: true}
				res.Alloc[d.ID] = rows
			}
		}
		break // Algorithm 2 stops at the first unfittable demand.
	}
	res.Profit = profitOf(in.Demands, res.FullProfit)
	res.Elapsed = time.Since(start)
	return res, nil
}

func nonzero(x float64) float64 {
	if x <= 0 {
		return 1e-12
	}
	return x
}

// fitDemand tries to pack the full demand into the remaining
// capacities over surviving tunnels, exactly (a tiny LP per demand,
// since a demand's tunnels may share links). It returns the per-pair
// per-tunnel allocation on success.
func fitDemand(in *alloc.Input, capRem []float64, d *demand.Demand, usable func(routing.Tunnel) bool) ([][]float64, bool) {
	one := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels, Demands: []*demand.Demand{d}}
	p := lp.NewProblem()
	fv := alloc.AddFlowVars(p, one, capRem, usable)
	for _, rows := range fv {
		for _, r := range rows {
			for _, v := range r {
				p.SetCost(v, 1) // cheapest exact fit
			}
		}
	}
	for pi, pr := range d.Pairs {
		if pr.Bandwidth <= 0 {
			continue
		}
		terms := make([]lp.Term, 0, len(fv[d.ID][pi]))
		for _, v := range fv[d.ID][pi] {
			terms = append(terms, lp.Term{Var: v, Coef: 1})
		}
		p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.EQ, RHS: pr.Bandwidth})
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, false
	}
	return fv.Extract(sol)[d.ID], true
}

// consume subtracts an allocation from the remaining capacities.
func consume(in *alloc.Input, capRem []float64, d *demand.Demand, rows [][]float64) {
	for pi := range d.Pairs {
		tunnels := in.TunnelsFor(d, pi)
		for ti, f := range rows[pi] {
			if f <= 0 {
				continue
			}
			for _, e := range tunnels[ti].Links {
				capRem[e] -= f
			}
		}
	}
}

// Backups precomputes the greedy backup allocation for every
// single-link failure scenario (§3.4: BATE proactively computes backup
// allocation strategies so surviving tunnels can be used immediately).
func Backups(in *alloc.Input) (map[topo.LinkID]*RecoveryResult, error) {
	out := make(map[topo.LinkID]*RecoveryResult, in.Net.NumLinks())
	for _, l := range in.Net.Links() {
		r, err := RecoverGreedy(in, []topo.LinkID{l.ID})
		if err != nil {
			return nil, fmt.Errorf("bate: backup for link %d: %w", l.ID, err)
		}
		out[l.ID] = r
	}
	return out, nil
}
