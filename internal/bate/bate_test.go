package bate

import (
	"math"
	"math/rand"
	"testing"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/lp"
	"bate/internal/routing"
	"bate/internal/scenario"
	"bate/internal/topo"
)

func fig2Input(t *testing.T) *alloc.Input {
	t.Helper()
	n := topo.Toy()
	ts := routing.Compute(n, routing.KShortest, 2)
	dc1, _ := n.NodeByName("DC1")
	dc4, _ := n.NodeByName("DC4")
	u1 := &demand.Demand{ID: 0, Pairs: []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 6000}}, Target: 0.99, Charge: 6000, RefundFrac: 0.1}
	u2 := &demand.Demand{ID: 1, Pairs: []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 12000}}, Target: 0.90, Charge: 12000, RefundFrac: 0.1}
	return &alloc.Input{Net: n, Tunnels: ts, Demands: []*demand.Demand{u1, u2}}
}

func testbedInput(t *testing.T, demands []*demand.Demand) *alloc.Input {
	t.Helper()
	n := topo.Testbed()
	return &alloc.Input{Net: n, Tunnels: routing.Compute(n, routing.KShortest, 4), Demands: demands}
}

func testbedDemand(t *testing.T, in *alloc.Input, id int, src, dst string, bw, target float64) *demand.Demand {
	t.Helper()
	s, ok := in.Net.NodeByName(src)
	if !ok {
		t.Fatalf("node %s", src)
	}
	d, _ := in.Net.NodeByName(dst)
	return &demand.Demand{
		ID: id, Pairs: []demand.PairDemand{{Src: s, Dst: d, Bandwidth: bw}},
		Target: target, Charge: bw, RefundFrac: 0.1,
	}
}

func TestScheduleFig2(t *testing.T) {
	in := fig2Input(t)
	a, stats, err := Schedule(in, ScheduleOptions{MaxFail: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCapacity(in, 1e-3); err != nil {
		t.Fatal(err)
	}
	if stats.Variables == 0 || stats.Constraints == 0 {
		t.Fatalf("stats empty: %+v", stats)
	}
	// Both availability targets are met (the Fig. 2(d) outcome).
	for _, d := range in.Demands {
		av, err := alloc.AchievedAvailability(in, a, d, 3)
		if err != nil {
			t.Fatal(err)
		}
		if av < d.Target {
			t.Fatalf("demand %d achieved %v < target %v", d.ID, av, d.Target)
		}
		if got := a.AllocatedFor(d, 0); got < d.Pairs[0].Bandwidth-1 {
			t.Fatalf("demand %d allocated %v < %v (Eq. 1)", d.ID, got, d.Pairs[0].Bandwidth)
		}
	}
	// Minimum-resource objective: exactly the demanded 18 Gbps.
	if math.Abs(a.Total()-18000) > 10 {
		t.Fatalf("total allocation %v, want 18000", a.Total())
	}
	// User1 must ride the reliable DC3 path exclusively: the DC2 path
	// alone cannot reach 99%.
	u1 := in.Demands[0]
	for ti, tun := range in.TunnelsFor(u1, 0) {
		dc2, _ := in.Net.NodeByName("DC2")
		if in.Net.Link(tun.Links[0]).Dst == dc2 && a[u1.ID][0][ti] > 1 {
			t.Fatalf("u1 allocated %v on the flaky DC2 path", a[u1.ID][0][ti])
		}
	}
}

func TestScheduleModesAgree(t *testing.T) {
	in := fig2Input(t)
	agg, _, err := Schedule(in, ScheduleOptions{MaxFail: 2, Mode: Aggregated})
	if err != nil {
		t.Fatal(err)
	}
	enum, _, err := Schedule(in, ScheduleOptions{MaxFail: 2, Mode: Enumerated})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(agg.Total()-enum.Total()) > 1 {
		t.Fatalf("aggregated %v != enumerated %v", agg.Total(), enum.Total())
	}
}

func TestScheduleInfeasibleBandwidth(t *testing.T) {
	in := fig2Input(t)
	in.Demands[1].Pairs[0].Bandwidth = 50000 // exceeds the 20 Gbps cut
	_, _, err := Schedule(in, ScheduleOptions{MaxFail: 2})
	if err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestScheduleInfeasibleAvailability(t *testing.T) {
	// A target above what any tunnel combination can reach.
	in := fig2Input(t)
	in.Demands[0].Target = 0.99999999
	_, _, err := Schedule(in, ScheduleOptions{MaxFail: 3})
	if err == nil {
		t.Fatal("expected availability infeasibility")
	}
}

func TestScheduleBestEffort(t *testing.T) {
	in := fig2Input(t)
	in.Demands[0].Target = 0
	in.Demands[1].Target = 0
	a, _, err := Schedule(in, ScheduleOptions{MaxFail: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range in.Demands {
		if got := a.AllocatedFor(d, 0); got < d.Pairs[0].Bandwidth-1 {
			t.Fatalf("best-effort demand %d allocated %v", d.ID, got)
		}
	}
}

func TestAdmitFixed(t *testing.T) {
	in := testbedInput(t, nil)
	empty := alloc.New(in)
	d := testbedDemand(t, in, 0, "DC1", "DC3", 500, 0.99)
	res, err := AdmitFixed(in, empty, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted || res.Method != MethodFixed {
		t.Fatalf("empty network should admit: %+v", res)
	}
	if len(res.NewAlloc) != 1 {
		t.Fatal("missing allocation")
	}
	sum := 0.0
	for _, f := range res.NewAlloc[0] {
		sum += f
	}
	if sum < 500-1 {
		t.Fatalf("allocated %v < 500", sum)
	}
	// Oversized demand is rejected.
	big := testbedDemand(t, in, 1, "DC1", "DC3", 10000, 0.99)
	res, err = AdmitFixed(in, empty, big, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted {
		t.Fatal("10 Gbps demand cannot fit 1 Gbps links")
	}
}

func TestConjectureBasic(t *testing.T) {
	in := testbedInput(t, nil)
	small := []*demand.Demand{
		testbedDemand(t, in, 0, "DC1", "DC3", 300, 0.95),
		testbedDemand(t, in, 1, "DC1", "DC4", 200, 0.95),
	}
	if !Conjecture(in, small) {
		t.Fatal("small demands should pass the conjecture")
	}
	huge := []*demand.Demand{
		testbedDemand(t, in, 0, "DC1", "DC3", 5000, 0.95),
	}
	if Conjecture(in, huge) {
		t.Fatal("5 Gbps cannot fit")
	}
	// Unreachable availability: a target above every path product.
	strict := []*demand.Demand{
		testbedDemand(t, in, 0, "DC1", "DC4", 3000, 0.999999999),
	}
	if Conjecture(in, strict) {
		t.Fatal("unreachable availability should fail the conjecture")
	}
}

// Theorem 1: if the conjecture admits a demand set, a satisfying
// allocation exists — i.e. the scheduling LP is feasible. We verify on
// random demand sets. (The LP's availability relaxation is weaker than
// full satisfaction, so LP feasibility is the right check: the paper's
// scheduler is exactly this LP.)
func TestConjectureNoFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	in0 := testbedInput(t, nil)
	targets := []float64{0.9, 0.95, 0.99, 0.999}
	pairs := in0.Net.Pairs()
	accepted, tested := 0, 0
	for trial := 0; trial < 40; trial++ {
		nd := 1 + rng.Intn(6)
		demands := make([]*demand.Demand, nd)
		for i := range demands {
			p := pairs[rng.Intn(len(pairs))]
			demands[i] = &demand.Demand{
				ID:     i,
				Pairs:  []demand.PairDemand{{Src: p[0], Dst: p[1], Bandwidth: 50 + rng.Float64()*400}},
				Target: targets[rng.Intn(len(targets))],
			}
		}
		in := &alloc.Input{Net: in0.Net, Tunnels: in0.Tunnels, Demands: demands}
		tested++
		if !Conjecture(in, demands) {
			continue
		}
		accepted++
		if _, _, err := Schedule(in, ScheduleOptions{MaxFail: 2}); err != nil {
			t.Fatalf("trial %d: conjecture admitted but scheduling infeasible: %v", trial, err)
		}
	}
	if accepted == 0 {
		t.Fatalf("conjecture accepted nothing in %d trials; test is vacuous", tested)
	}
}

func TestAdmitThreeSteps(t *testing.T) {
	in := testbedInput(t, nil)
	d0 := testbedDemand(t, in, 0, "DC1", "DC3", 400, 0.99)
	res, err := Admit(in, alloc.New(in), nil, d0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted || res.Method != MethodFixed {
		t.Fatalf("step 1 should admit: %+v", res)
	}
	// Reject: hopeless demand.
	dBad := testbedDemand(t, in, 1, "DC1", "DC3", 9999, 0.99)
	res, err = Admit(in, alloc.New(in), nil, dBad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted || res.Method != MethodRejected {
		t.Fatalf("step 3 should reject: %+v", res)
	}
}

func TestAdmitConjectureStep(t *testing.T) {
	// Occupy the network with a deliberately wasteful fixed allocation
	// so step (1) fails but a global reshuffle (step 2) succeeds.
	in0 := testbedInput(t, nil)
	d0 := testbedDemand(t, in0, 0, "DC1", "DC3", 600, 0.95)
	in := testbedInput(t, []*demand.Demand{d0})
	wasteful := alloc.New(in)
	// Spread d0 over every tunnel, loading all DC1-adjacent links.
	for ti, tun := range in.TunnelsFor(d0, 0) {
		_ = tun
		wasteful[d0.ID][0][ti] = 600
	}
	dNew := testbedDemand(t, in, 1, "DC1", "DC4", 700, 0.95)
	res, err := Admit(in, wasteful, []*demand.Demand{d0}, dNew, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted {
		t.Fatalf("expected admission: %+v", res)
	}
}

func TestAdmitOptimal(t *testing.T) {
	in := testbedInput(t, nil)
	d0 := testbedDemand(t, in, 0, "DC1", "DC3", 400, 0.99)
	res, a, err := AdmitOptimal(in, nil, d0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted || res.Method != MethodOptimal {
		t.Fatalf("optimal should admit: %+v", res)
	}
	if a == nil || a.AllocatedFor(d0, 0) < 400-1 {
		t.Fatal("optimal admission must allocate the demand")
	}
	// Oversized: rejected.
	dBad := testbedDemand(t, in, 1, "DC1", "DC3", 9999, 0.99)
	res, _, err = AdmitOptimal(in, nil, dBad, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted {
		t.Fatal("oversized demand admitted")
	}
}

// The optimal admission dominates the greedy conjecture: whenever the
// conjecture says yes, the MILP must also admit (Theorem 1 guarantees
// an allocation exists).
func TestOptimalDominatesConjecture(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in0 := testbedInput(t, nil)
	pairs := in0.Net.Pairs()
	targets := []float64{0.9, 0.95, 0.99}
	checked := 0
	for trial := 0; trial < 12; trial++ {
		var admitted []*demand.Demand
		nd := 1 + rng.Intn(3)
		for i := 0; i < nd; i++ {
			p := pairs[rng.Intn(len(pairs))]
			admitted = append(admitted, &demand.Demand{
				ID:     i,
				Pairs:  []demand.PairDemand{{Src: p[0], Dst: p[1], Bandwidth: 50 + rng.Float64()*200}},
				Target: targets[rng.Intn(len(targets))],
			})
		}
		p := pairs[rng.Intn(len(pairs))]
		dNew := &demand.Demand{
			ID:     nd,
			Pairs:  []demand.PairDemand{{Src: p[0], Dst: p[1], Bandwidth: 50 + rng.Float64()*200}},
			Target: targets[rng.Intn(len(targets))],
		}
		all := append(append([]*demand.Demand(nil), admitted...), dNew)
		in := &alloc.Input{Net: in0.Net, Tunnels: in0.Tunnels, Demands: all}
		if !Conjecture(in, all) {
			continue
		}
		checked++
		res, _, err := AdmitOptimal(in, admitted, dNew, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Admitted {
			t.Fatalf("trial %d: conjecture admitted but optimal rejected", trial)
		}
	}
	if checked == 0 {
		t.Fatal("no trials exercised the dominance check")
	}
}

func TestRecoveryOptimalVsGreedy(t *testing.T) {
	in := testbedInput(t, nil)
	demands := []*demand.Demand{
		testbedDemand(t, in, 0, "DC1", "DC3", 600, 0.99),
		testbedDemand(t, in, 1, "DC1", "DC4", 500, 0.999),
		testbedDemand(t, in, 2, "DC1", "DC5", 800, 0.95),
	}
	in.Demands = demands
	// Fail L4 (the direct DC1-DC4 fiber, both directions).
	dc1, _ := in.Net.NodeByName("DC1")
	dc4, _ := in.Net.NodeByName("DC4")
	l1, _ := in.Net.LinkBetween(dc1, dc4)
	l2, _ := in.Net.LinkBetween(dc4, dc1)
	failed := []topo.LinkID{l1.ID, l2.ID}

	opt, err := RecoverOptimal(in, failed)
	if err != nil {
		t.Fatal(err)
	}
	grd, err := RecoverGreedy(in, failed)
	if err != nil {
		t.Fatal(err)
	}
	if grd.Profit > opt.Profit+1e-6 {
		t.Fatalf("greedy profit %v exceeds optimal %v", grd.Profit, opt.Profit)
	}
	// Lemma 2: greedy is 2-optimal on the refundable part. With full
	// profits this is implied by profit >= optimal/2.
	if grd.Profit < opt.Profit/2-1e-6 {
		t.Fatalf("greedy profit %v below optimal/2 (%v)", grd.Profit, opt.Profit/2)
	}
	// Allocations must avoid failed links and respect capacity.
	for _, r := range []*RecoveryResult{opt, grd} {
		if err := r.Alloc.CheckCapacity(in, 1e-3); err != nil {
			t.Fatal(err)
		}
		loads := r.Alloc.LinkLoads(in)
		for _, e := range failed {
			if loads[e] > 1e-6 {
				t.Fatalf("allocation uses failed link %d", e)
			}
		}
	}
	// Every demand in FullProfit actually receives its bandwidth on
	// surviving tunnels.
	down := map[topo.LinkID]bool{l1.ID: true, l2.ID: true}
	up := func(tn routing.Tunnel) bool {
		for _, e := range tn.Links {
			if down[e] {
				return false
			}
		}
		return true
	}
	for _, r := range []*RecoveryResult{opt, grd} {
		for _, d := range demands {
			if r.FullProfit[d.ID] {
				if got := r.Alloc.Delivered(in, d, 0, up); got < d.Pairs[0].Bandwidth-1 {
					t.Fatalf("demand %d in F but delivered only %v", d.ID, got)
				}
			}
		}
	}
}

// Property test for Lemma 2 across random recovery instances.
func TestRecoveryTwoApproxProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	in0 := testbedInput(t, nil)
	pairs := in0.Net.Pairs()
	for trial := 0; trial < 25; trial++ {
		nd := 1 + rng.Intn(5)
		demands := make([]*demand.Demand, nd)
		for i := range demands {
			p := pairs[rng.Intn(len(pairs))]
			bw := 100 + rng.Float64()*700
			demands[i] = &demand.Demand{
				ID:     i,
				Pairs:  []demand.PairDemand{{Src: p[0], Dst: p[1], Bandwidth: bw}},
				Charge: bw * (0.5 + rng.Float64()), RefundFrac: 0.1 + rng.Float64()*0.4,
			}
		}
		in := &alloc.Input{Net: in0.Net, Tunnels: in0.Tunnels, Demands: demands}
		link := topo.LinkID(rng.Intn(in.Net.NumLinks()))
		opt, err := RecoverOptimal(in, []topo.LinkID{link})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		grd, err := RecoverGreedy(in, []topo.LinkID{link})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if grd.Profit > opt.Profit+1e-6 {
			t.Fatalf("trial %d: greedy %v > optimal %v", trial, grd.Profit, opt.Profit)
		}
		// Lemma 2 bounds the refundable (recoverable) profit portion.
		baseline := 0.0
		for _, d := range demands {
			baseline += (1 - d.RefundFrac) * d.Charge
		}
		optGain := opt.Profit - baseline
		grdGain := grd.Profit - baseline
		if grdGain < optGain/2-1e-6 {
			t.Fatalf("trial %d: greedy gain %v < optimal gain/2 %v", trial, grdGain, optGain/2)
		}
	}
}

func TestBackups(t *testing.T) {
	in := testbedInput(t, nil)
	in.Demands = []*demand.Demand{
		testbedDemand(t, in, 0, "DC1", "DC3", 400, 0.99),
		testbedDemand(t, in, 1, "DC1", "DC5", 300, 0.95),
	}
	backups, err := Backups(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(backups) != in.Net.NumLinks() {
		t.Fatalf("got %d backups, want %d", len(backups), in.Net.NumLinks())
	}
	for e, r := range backups {
		loads := r.Alloc.LinkLoads(in)
		if loads[e] > 1e-6 {
			t.Fatalf("backup for link %d routes over it", e)
		}
	}
}

func TestScheduleDefaultsAndErrors(t *testing.T) {
	in := fig2Input(t)
	if _, _, err := Schedule(in, ScheduleOptions{Mode: ScheduleMode(9)}); err == nil {
		t.Fatal("expected unknown-mode error")
	}
	// Default MaxFail (2) applies when 0 given.
	if _, _, err := Schedule(in, ScheduleOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverOptimalStatsPopulated(t *testing.T) {
	in := testbedInput(t, nil)
	in.Demands = []*demand.Demand{testbedDemand(t, in, 0, "DC1", "DC3", 400, 0.99)}
	r, err := RecoverOptimal(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes < 1 {
		t.Fatalf("nodes = %d", r.Nodes)
	}
	if !r.FullProfit[0] {
		t.Fatal("no-failure recovery should keep full profit")
	}
	if r.Profit != 400 {
		t.Fatalf("profit = %v, want 400", r.Profit)
	}
	_ = lp.Optimal
}

// The relaxation of Eq. 3-4 can certify availability fractionally
// that no allocation truly achieves; Harden must detect and repair it
// (or report infeasibility).
func TestHardenRepairsRelaxationGap(t *testing.T) {
	// Testbed with inflated failure probabilities so 99.99% targets
	// genuinely need multi-path redundancy.
	base := topo.Testbed()
	probs := make([]float64, base.NumLinks())
	for i := range probs {
		probs[i] = 0.002
	}
	n, err := base.WithFailProbs(probs)
	if err != nil {
		t.Fatal(err)
	}
	in := &alloc.Input{Net: n, Tunnels: routing.Compute(n, routing.KShortest, 4)}
	s, _ := n.NodeByName("DC1")
	d4, _ := n.NodeByName("DC4")
	in.Demands = []*demand.Demand{{
		ID: 0, Pairs: []demand.PairDemand{{Src: s, Dst: d4, Bandwidth: 300}}, Target: 0.9999,
	}}
	opts := ScheduleOptions{MaxFail: 2}
	a, err := ScheduleHard(in, opts)
	if err != nil {
		t.Fatalf("ScheduleHard: %v", err)
	}
	ok, err := alloc.Satisfies(in, a, in.Demands[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		av, _ := alloc.AchievedAvailability(in, a, in.Demands[0], 2)
		t.Fatalf("hardened allocation still unsatisfied: achieved %v", av)
	}
	if err := a.CheckCapacity(in, 1e-3); err != nil {
		t.Fatal(err)
	}
}

func TestHardenNoopWhenSatisfied(t *testing.T) {
	in := fig2Input(t)
	opts := ScheduleOptions{MaxFail: 2}
	a, _, err := Schedule(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Harden(in, opts, a)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != a.Total() {
		t.Fatalf("harden changed a satisfying allocation: %v -> %v", a.Total(), h.Total())
	}
}

func TestHardenInfeasibleTarget(t *testing.T) {
	// A target no class mass under y=1 can reach must fail to harden.
	base := topo.Testbed()
	probs := make([]float64, base.NumLinks())
	for i := range probs {
		probs[i] = 0.01
	}
	n, err := base.WithFailProbs(probs)
	if err != nil {
		t.Fatal(err)
	}
	in := &alloc.Input{Net: n, Tunnels: routing.Compute(n, routing.KShortest, 4)}
	s, _ := n.NodeByName("DC1")
	d4, _ := n.NodeByName("DC4")
	in.Demands = []*demand.Demand{{
		ID: 0, Pairs: []demand.PairDemand{{Src: s, Dst: d4, Bandwidth: 300}}, Target: 0.99999,
	}}
	// With 16 links at 1% each, P(<=1 failure) ≈ 0.989 < 0.99999:
	// uncoverable at y=1.
	if _, err := ScheduleHard(in, ScheduleOptions{MaxFail: 1}); err == nil {
		t.Fatal("expected hardening infeasibility")
	}
}

// Admission's hard check must refuse demands whose targets cannot
// truly be met, even when the relaxation would certify them.
func TestAdmitFixedHardGuarantee(t *testing.T) {
	base := topo.Testbed()
	probs := make([]float64, base.NumLinks())
	for i := range probs {
		probs[i] = 0.01
	}
	n, err := base.WithFailProbs(probs)
	if err != nil {
		t.Fatal(err)
	}
	in := &alloc.Input{Net: n, Tunnels: routing.Compute(n, routing.KShortest, 4)}
	s, _ := n.NodeByName("DC1")
	d4, _ := n.NodeByName("DC4")
	d := &demand.Demand{ID: 0, Pairs: []demand.PairDemand{{Src: s, Dst: d4, Bandwidth: 300}}, Target: 0.99999}
	res, err := AdmitFixed(in, alloc.New(in), d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted {
		t.Fatal("uncertifiable demand admitted")
	}
	// When admitted, the first-time allocation truly satisfies.
	d2 := &demand.Demand{ID: 1, Pairs: []demand.PairDemand{{Src: s, Dst: d4, Bandwidth: 300}}, Target: 0.99}
	res, err = AdmitFixed(in, alloc.New(in), d2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admitted {
		t.Fatal("certifiable demand rejected")
	}
	trial := alloc.Allocation{d2.ID: res.NewAlloc}
	one := &alloc.Input{Net: n, Tunnels: in.Tunnels, Demands: []*demand.Demand{d2}}
	ok, err := alloc.Satisfies(one, trial, d2, 2)
	if err != nil || !ok {
		t.Fatalf("first-time allocation does not satisfy: %v", err)
	}
}

func TestLinkPrices(t *testing.T) {
	// Saturate the toy network (18 of 20 Gbps): the DC3-path links are
	// scarce for the 99% demand and must carry positive prices; with
	// slack elsewhere some links price at zero.
	in := fig2Input(t)
	prices, err := LinkPrices(in, ScheduleOptions{MaxFail: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(prices) == 0 {
		t.Fatal("no capacity rows priced")
	}
	anyPositive, anyZero := false, false
	for link, pr := range prices {
		if pr < -1e-6 {
			t.Fatalf("link %d priced negative: %v", link, pr)
		}
		if pr > 1e-6 {
			anyPositive = true
		} else {
			anyZero = true
		}
	}
	if !anyPositive || !anyZero {
		t.Fatalf("expected a mix of scarce and free links: %v", prices)
	}
	// Doubling every capacity removes scarcity: all prices zero.
	loose := in.Net.Scale(2)
	in2 := &alloc.Input{Net: loose, Tunnels: routing.Compute(loose, routing.KShortest, 2), Demands: in.Demands}
	prices2, err := LinkPrices(in2, ScheduleOptions{MaxFail: 2})
	if err != nil {
		t.Fatal(err)
	}
	for link, pr := range prices2 {
		if pr > 1e-6 {
			t.Fatalf("loose network link %d priced %v, want 0", link, pr)
		}
	}
}

func TestPrecomputeBackupsDepth2(t *testing.T) {
	in := testbedInput(t, nil)
	in.Demands = []*demand.Demand{
		testbedDemand(t, in, 0, "DC1", "DC3", 400, 0.99),
		testbedDemand(t, in, 1, "DC2", "DC6", 300, 0.95),
	}
	bs, err := PrecomputeBackups(in, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 16 singles + C(16,2)=120 pairs.
	if bs.Len() != 16+120 {
		t.Fatalf("got %d combos, want 136", bs.Len())
	}
	// Lookup order must not matter, and allocations avoid the down links.
	down := []topo.LinkID{7, 3}
	r, ok := bs.For(down)
	if !ok {
		t.Fatal("pair combo missing")
	}
	r2, ok2 := bs.For([]topo.LinkID{3, 7})
	if !ok2 || r2 != r {
		t.Fatal("lookup not order-invariant")
	}
	loads := r.Alloc.LinkLoads(in)
	for _, e := range down {
		if loads[e] > 1e-6 {
			t.Fatalf("backup routes over failed link %d", e)
		}
	}
	if _, ok := bs.For([]topo.LinkID{1, 2, 3}); ok {
		t.Fatal("depth-3 combo should be absent")
	}
	if _, ok := bs.For(nil); ok {
		t.Fatal("empty failure set should not resolve")
	}
}

func TestPrecomputeBackupsBudget(t *testing.T) {
	in := testbedInput(t, nil)
	in.Demands = []*demand.Demand{testbedDemand(t, in, 0, "DC1", "DC5", 200, 0.95)}
	bs, err := PrecomputeBackups(in, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Len() != 20 {
		t.Fatalf("budgeted set has %d combos", bs.Len())
	}
	if bs.Skipped() != 136-20 {
		t.Fatalf("skipped = %d", bs.Skipped())
	}
	// The most probable failure — L4 (links 6/7 at 1%) — must be
	// within any sane budget.
	if _, ok := bs.For([]topo.LinkID{6}); !ok {
		t.Fatal("budget dropped the most probable failure")
	}
	// Both L4 directions together are the most probable pair.
	if _, ok := bs.For([]topo.LinkID{6, 7}); !ok {
		t.Fatal("budget dropped the most probable pair")
	}
}

// A demand spanning two s-d pairs (b_d is a vector, §3.1): the
// availability machinery must require BOTH pairs delivered in a
// qualified scenario.
func TestScheduleMultiPairDemand(t *testing.T) {
	in := testbedInput(t, nil)
	s1, _ := in.Net.NodeByName("DC1")
	d3, _ := in.Net.NodeByName("DC3")
	s2, _ := in.Net.NodeByName("DC2")
	d6, _ := in.Net.NodeByName("DC6")
	md := &demand.Demand{
		ID: 0,
		Pairs: []demand.PairDemand{
			{Src: s1, Dst: d3, Bandwidth: 300},
			{Src: s2, Dst: d6, Bandwidth: 200},
		},
		Target: 0.99, Charge: 500, RefundFrac: 0.1,
	}
	in.Demands = []*demand.Demand{md}
	a, err := ScheduleHard(in, ScheduleOptions{MaxFail: 2})
	if err != nil {
		t.Fatal(err)
	}
	for pi, pr := range md.Pairs {
		if got := a.AllocatedFor(md, pi); got < pr.Bandwidth-1 {
			t.Fatalf("pair %d allocated %v < %v", pi, got, pr.Bandwidth)
		}
	}
	av, err := alloc.AchievedAvailability(in, a, md, 2)
	if err != nil {
		t.Fatal(err)
	}
	if av < md.Target {
		t.Fatalf("multi-pair achieved %v < %v", av, md.Target)
	}
	// Dropping one pair's allocation must break satisfaction.
	broken := a.Clone()
	for ti := range broken[md.ID][1] {
		broken[md.ID][1][ti] = 0
	}
	ok, err := alloc.Satisfies(in, broken, md, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("demand satisfied with a starved pair")
	}
}

func TestRecoveryMultiPairDemand(t *testing.T) {
	in := testbedInput(t, nil)
	s1, _ := in.Net.NodeByName("DC1")
	d3, _ := in.Net.NodeByName("DC3")
	s2, _ := in.Net.NodeByName("DC2")
	d6, _ := in.Net.NodeByName("DC6")
	md := &demand.Demand{
		ID: 0,
		Pairs: []demand.PairDemand{
			{Src: s1, Dst: d3, Bandwidth: 300},
			{Src: s2, Dst: d6, Bandwidth: 200},
		},
		Target: 0.99, Charge: 500, RefundFrac: 0.2,
	}
	in.Demands = []*demand.Demand{md}
	grd, err := RecoverGreedy(in, []topo.LinkID{0})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := RecoverOptimal(in, []topo.LinkID{0})
	if err != nil {
		t.Fatal(err)
	}
	if grd.Profit > opt.Profit+1e-6 {
		t.Fatalf("greedy %v > optimal %v", grd.Profit, opt.Profit)
	}
	// Full profit requires every pair served.
	if opt.FullProfit[md.ID] {
		for pi, pr := range md.Pairs {
			sum := 0.0
			for _, f := range opt.Alloc[md.ID][pi] {
				sum += f
			}
			if sum < pr.Bandwidth-1 {
				t.Fatalf("pair %d only %v allocated despite full profit", pi, sum)
			}
		}
	}
}

func TestConjectureMultiPair(t *testing.T) {
	in := testbedInput(t, nil)
	s1, _ := in.Net.NodeByName("DC1")
	d3, _ := in.Net.NodeByName("DC3")
	s2, _ := in.Net.NodeByName("DC4")
	d6, _ := in.Net.NodeByName("DC6")
	md := &demand.Demand{
		ID: 0,
		Pairs: []demand.PairDemand{
			{Src: s1, Dst: d3, Bandwidth: 400},
			{Src: s2, Dst: d6, Bandwidth: 300},
		},
		Target: 0.95,
	}
	if !Conjecture(in, []*demand.Demand{md}) {
		t.Fatal("feasible multi-pair demand rejected by conjecture")
	}
	md.Pairs[0].Bandwidth = 50000
	if Conjecture(in, []*demand.Demand{md}) {
		t.Fatal("oversized multi-pair demand admitted")
	}
}

func TestAdmitTimeline(t *testing.T) {
	in := testbedInput(t, nil)
	mk := func(id int, bw, start, end float64) *demand.Demand {
		d := testbedDemand(t, in, id, "DC1", "DC3", bw, 0.95)
		d.Start, d.End = start, end
		return d
	}
	// Two bookings saturating DC1->DC3-ish capacity in [100, 200).
	booked := []*demand.Demand{
		mk(0, 900, 100, 200),
		mk(1, 900, 150, 250),
	}
	// A demand entirely before the congestion is admitted.
	early := mk(2, 900, 0, 90)
	dec, err := AdmitTimeline(in, booked, early)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted || len(dec.Intervals) != 1 {
		t.Fatalf("early: %+v", dec)
	}
	// A big demand overlapping the doubly-booked window is refused,
	// and the blocking interval is the overlap [150, 200).
	clash := mk(3, 1200, 120, 260)
	dec, err = AdmitTimeline(in, booked, clash)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted {
		t.Fatal("clash admitted despite saturated window")
	}
	if dec.BlockingInterval[0] < 120 || dec.BlockingInterval[1] > 260 {
		t.Fatalf("blocking interval %v outside demand window", dec.BlockingInterval)
	}
	// The same demand booked after everyone departs is fine.
	later := mk(4, 1200, 300, 400)
	dec, err = AdmitTimeline(in, booked, later)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatal("later demand refused despite empty window")
	}
	// Empty lifetime is rejected.
	if _, err := AdmitTimeline(in, booked, mk(5, 10, 50, 50)); err == nil {
		t.Fatal("expected lifetime validation error")
	}
}

// Window-aware admission partitions correctly: interval boundaries
// cover the demand's lifetime exactly.
func TestAdmitTimelineIntervals(t *testing.T) {
	in := testbedInput(t, nil)
	mk := func(id int, bw, start, end float64) *demand.Demand {
		d := testbedDemand(t, in, id, "DC2", "DC5", bw, 0.9)
		d.Start, d.End = start, end
		return d
	}
	booked := []*demand.Demand{mk(0, 50, 10, 30), mk(1, 50, 20, 40)}
	d := mk(2, 50, 0, 50)
	dec, err := AdmitTimeline(in, booked, d)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatal("light demand refused")
	}
	// Cuts at 10, 20, 30, 40 → 5 intervals spanning [0, 50).
	if len(dec.Intervals) != 5 {
		t.Fatalf("got %d intervals: %v", len(dec.Intervals), dec.Intervals)
	}
	if dec.Intervals[0][0] != 0 || dec.Intervals[len(dec.Intervals)-1][1] != 50 {
		t.Fatalf("intervals do not span the lifetime: %v", dec.Intervals)
	}
	for i := 1; i < len(dec.Intervals); i++ {
		if dec.Intervals[i][0] != dec.Intervals[i-1][1] {
			t.Fatalf("interval gap: %v", dec.Intervals)
		}
	}
}

// SRLG-aware scheduling: when both toy paths' first hops share a
// conduit, no allocation can certify 99% (a single conduit cut kills
// everything), and the scheduler must say so; without the group the
// same demand schedules fine.
func TestScheduleWithRiskGroups(t *testing.T) {
	in := fig2Input(t)
	in.Demands = in.Demands[:1] // just user1: 6 Gbps @ 99%
	u1 := in.Demands[0]
	var firstHops []topo.LinkID
	for _, tun := range in.TunnelsFor(u1, 0) {
		firstHops = append(firstHops, tun.Links[0])
	}
	groups := []scenario.RiskGroup{{Name: "dc1-conduit", Links: firstHops, Prob: 0.02}}

	// Independent model: fine.
	if _, err := ScheduleHard(in, ScheduleOptions{MaxFail: 2}); err != nil {
		t.Fatalf("independent schedule: %v", err)
	}
	// Correlated model: P(conduit up) ≈ 0.98 < 0.99 — no allocation
	// can reach the target, so the hardened schedule must fail.
	if _, err := ScheduleHard(in, ScheduleOptions{MaxFail: 2, Groups: groups}); err == nil {
		t.Fatal("correlated schedule should be infeasible at 99%")
	}
	// A 95% target tolerates the conduit.
	u1.Target = 0.95
	a, err := ScheduleHard(in, ScheduleOptions{MaxFail: 2, Groups: groups})
	if err != nil {
		t.Fatalf("95%% correlated schedule: %v", err)
	}
	ok, err := alloc.SatisfiesGroups(in, a, u1, 2, groups)
	if err != nil || !ok {
		av, _ := alloc.AchievedAvailabilityGroups(in, a, u1, 2, groups)
		t.Fatalf("correlated satisfaction failed: achieved %v, err %v", av, err)
	}
	// Enumerated mode refuses groups.
	if _, _, err := Schedule(in, ScheduleOptions{MaxFail: 1, Mode: Enumerated, Groups: groups}); err == nil {
		t.Fatal("enumerated mode must reject groups")
	}
}
