package bate

import (
	"math"
	"testing"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/lp"
)

// testbed6Demands is a small saturated workload on the 6-DC testbed.
func testbed6Demands(t *testing.T, in *alloc.Input) []*demand.Demand {
	t.Helper()
	return []*demand.Demand{
		testbedDemand(t, in, 0, "DC1", "DC3", 400, 0.99),
		testbedDemand(t, in, 1, "DC2", "DC6", 300, 0.95),
		testbedDemand(t, in, 2, "DC4", "DC5", 200, 0.9),
	}
}

// TestLinkPricesRevisedMatchesDense: the revised engine's shadow
// prices must match the dense reference on the toy 4-DC and testbed
// 6-DC topologies (ISSUE 2 satellite: Solution.Dual / LinkPrices
// coverage under the revised engine).
func TestLinkPricesRevisedMatchesDense(t *testing.T) {
	toy := fig2Input(t)
	testbed := testbedInput(t, nil)
	testbed.Demands = testbed6Demands(t, testbed)
	cases := map[string]*alloc.Input{"toy4": toy, "testbed6": testbed}
	for name, in := range cases {
		dense, err := LinkPrices(in, ScheduleOptions{MaxFail: 2, Engine: lp.EngineDense})
		if err != nil {
			t.Fatalf("%s dense: %v", name, err)
		}
		revised, err := LinkPrices(in, ScheduleOptions{MaxFail: 2, Engine: lp.EngineRevised})
		if err != nil {
			t.Fatalf("%s revised: %v", name, err)
		}
		if len(dense) != len(revised) {
			t.Fatalf("%s: price map sizes differ: %d vs %d", name, len(dense), len(revised))
		}
		for link, dp := range dense {
			rp, ok := revised[link]
			if !ok {
				t.Fatalf("%s: link %d missing from revised prices", name, link)
			}
			if math.Abs(dp-rp) > 1e-6*(1+math.Abs(dp)) {
				t.Fatalf("%s: link %d price dense=%g revised=%g", name, link, dp, rp)
			}
		}
	}
}

// TestScheduleRevisedEngine: the revised engine produces a feasible,
// target-meeting allocation equivalent in quality to the dense one.
func TestScheduleRevisedEngine(t *testing.T) {
	in := fig2Input(t)
	a, stats, err := Schedule(in, ScheduleOptions{MaxFail: 2, Engine: lp.EngineRevised})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WarmStarted {
		t.Fatal("cold schedule flagged as warm-started")
	}
	if err := a.CheckCapacity(in, 1e-3); err != nil {
		t.Fatal(err)
	}
	for _, d := range in.Demands {
		av, err := alloc.AchievedAvailability(in, a, d, 3)
		if err != nil {
			t.Fatal(err)
		}
		if av < d.Target {
			t.Fatalf("demand %d achieved %v < target %v", d.ID, av, d.Target)
		}
		if got := a.AllocatedFor(d, 0); got < d.Pairs[0].Bandwidth-1 {
			t.Fatalf("demand %d allocated %v < %v", d.ID, got, d.Pairs[0].Bandwidth)
		}
	}
}

// TestSchedulerWarmStart: a Scheduler's second solve of the same
// admitted set reuses the cached basis and needs no more pivots than
// the cold round, while preserving solution quality.
func TestSchedulerWarmStart(t *testing.T) {
	in := fig2Input(t)
	s := NewScheduler()
	opts := ScheduleOptions{MaxFail: 2}
	_, st1, err := s.Schedule(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st1.WarmStarted {
		t.Fatal("first round flagged as warm-started")
	}
	a2, st2, err := s.Schedule(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.WarmStarted {
		t.Fatal("second round did not warm-start")
	}
	if st2.Iterations > st1.Iterations {
		t.Fatalf("warm round used more pivots (%d) than cold (%d)", st2.Iterations, st1.Iterations)
	}
	for _, d := range in.Demands {
		av, err := alloc.AchievedAvailability(in, a2, d, 3)
		if err != nil {
			t.Fatal(err)
		}
		if av < d.Target {
			t.Fatalf("demand %d achieved %v < target %v after warm round", d.ID, av, d.Target)
		}
	}
	// Growing the admitted set changes the LP shape: the stale basis is
	// discarded and the round cold-starts, then the next round warms
	// again.
	in3 := testbedInput(t, nil)
	in3.Demands = testbed6Demands(t, in3)
	_, st3, err := s.Schedule(in3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st3.WarmStarted {
		t.Fatal("shape-changed round must not warm-start")
	}
	_, st4, err := s.Schedule(in3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st4.WarmStarted {
		t.Fatal("repeat round after shape change did not warm-start")
	}
}
