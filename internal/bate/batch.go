package bate

import (
	"context"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/metrics"
	"bate/internal/parallel"
)

// AdmitBatch admits a batch of simultaneous arrivals with the same
// decisions, in the same order, that calling Admit once per demand
// would make — but with the expensive per-demand evaluations run
// concurrently.
//
// The §3.2 strategy is inherently sequential: each admit changes the
// residual capacity the next check sees. AdmitBatch therefore splits
// the work into a speculation phase and a commit phase. First every
// candidate is evaluated in parallel against the frozen pre-batch
// state. Then candidates are committed serially in input order; a
// speculative result is reused only when it is provably identical to
// what the serial evaluation would produce —
//
//   - nothing earlier in the batch has been admitted yet, so the state
//     the speculation saw is still the true state; or
//   - the speculation admitted via the fixed-allocation check
//     (MethodFixed) and the candidate's tunnels share no link with any
//     earlier in-batch admit. AdmitFixed's LP constrains only the
//     residual capacity of links carrying the candidate's own tunnels,
//     so a disjoint footprint means the earlier admits cannot have
//     changed its inputs.
//
// Every other case — rejections and conjecture admits after the state
// has moved, or fixed admits with overlapping footprints — is
// re-evaluated serially against the up-to-date state, exactly as the
// serial loop would.

// Counters for batch admission speculation efficacy.
var (
	batchDemands   = metrics.NewCounter("bate.batch.demands")
	batchSpecHits  = metrics.NewCounter("bate.batch.spec_reused")
	batchFallbacks = metrics.NewCounter("bate.batch.serial_fallback")
)

// BatchOptions tunes AdmitBatch.
type BatchOptions struct {
	// MaxFail is the scenario-pruning depth (defaults to 2, like
	// ScheduleOptions).
	MaxFail int
	// StopAfterConjecture stops committing right after a conjecture
	// admit, returning the undecided remainder in Deferred. A
	// conjecture admit carries only a temporary partial allocation
	// (§3.2 footnote 5), so callers that reschedule immediately — the
	// time simulator does — must re-batch the rest against the
	// post-reschedule state.
	StopAfterConjecture bool
}

// BatchDecision pairs one batch demand with its admission outcome.
type BatchDecision struct {
	Demand *demand.Demand
	Result *AdmissionResult
	// Speculative reports that the decision was served from the
	// parallel speculation phase rather than a serial re-evaluation.
	Speculative bool
}

// BatchResult reports the decided prefix of the batch and any
// undecided remainder.
type BatchResult struct {
	// Decisions holds one entry per decided demand, in input order.
	Decisions []BatchDecision
	// Deferred is the undecided tail when StopAfterConjecture cut the
	// batch short; empty otherwise.
	Deferred []*demand.Demand
	// Allocations maps each admitted demand's ID to its new allocation
	// (identical to the corresponding Result.NewAlloc).
	Allocations alloc.Allocation
	// SpecReused and SerialFallbacks count how decisions were obtained.
	SpecReused      int
	SerialFallbacks int
}

// AdmitBatch runs the full admission strategy over a batch of
// arrivals. in.Demands and admitted must list the currently active
// demands (the same contract as Admit); current is their allocation.
// Neither is mutated.
func AdmitBatch(in *alloc.Input, current alloc.Allocation, admitted []*demand.Demand, batch []*demand.Demand, opts BatchOptions) (*BatchResult, error) {
	if opts.MaxFail <= 0 {
		opts.MaxFail = 2
	}
	batchDemands.Add(int64(len(batch)))
	res := &BatchResult{Allocations: alloc.Allocation{}}
	if len(batch) == 0 {
		return res, nil
	}

	// Speculation: evaluate every candidate against the frozen
	// pre-batch state. Admit only reads in/current/admitted, so the
	// evaluations are independent. Errors are recorded per candidate,
	// not raised here: the serial loop only hits an error once it
	// reaches that demand with the state unchanged.
	type speculation struct {
		res *AdmissionResult
		err error
	}
	// Speculation is wasted work whenever it cannot overlap: the serial
	// commit re-evaluates every candidate it cannot reuse, so with a
	// single worker the phase would only double the cost. Skip it and
	// let the commit loop degenerate into the plain serial strategy —
	// the decisions are identical either way.
	pool := parallel.Default()
	speculate := pool.Size() > 1 && len(batch) > 1
	specs := make([]speculation, len(batch))
	if speculate {
		perr := pool.ForEach(context.Background(), len(batch), func(i int) error {
			specs[i].res, specs[i].err = Admit(in, current, admitted, batch[i], opts.MaxFail)
			return nil
		})
		if perr != nil {
			return nil, perr
		}
	}

	// Commit serially in input order.
	cur := make(alloc.Allocation, len(current)+len(batch))
	for id, rows := range current {
		cur[id] = rows
	}
	adm := append([]*demand.Demand(nil), admitted...)
	touched := make([]bool, in.Net.NumLinks()) // links of in-batch admits
	batchAdmits := 0
	for i, d := range batch {
		var decision *AdmissionResult
		speculative := false
		switch {
		case speculate && batchAdmits == 0:
			// State unchanged since speculation: any outcome is exact.
			if specs[i].err != nil {
				return nil, specs[i].err
			}
			decision, speculative = specs[i].res, true
		case speculate && specs[i].err == nil && specs[i].res.Admitted &&
			specs[i].res.Method == MethodFixed && footprintDisjoint(in, d, touched):
			decision, speculative = specs[i].res, true
		default:
			live := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels, Demands: adm}
			var err error
			decision, err = Admit(live, cur, adm, d, opts.MaxFail)
			if err != nil {
				return nil, err
			}
		}
		if speculative {
			res.SpecReused++
			batchSpecHits.Inc()
		} else {
			res.SerialFallbacks++
			batchFallbacks.Inc()
		}
		res.Decisions = append(res.Decisions, BatchDecision{Demand: d, Result: decision, Speculative: speculative})
		if !decision.Admitted {
			continue
		}
		cur[d.ID] = decision.NewAlloc
		res.Allocations[d.ID] = decision.NewAlloc
		adm = append(adm, d)
		batchAdmits++
		markFootprint(in, d, touched)
		if opts.StopAfterConjecture && decision.Method == MethodConjecture {
			res.Deferred = append(res.Deferred, batch[i+1:]...)
			break
		}
	}
	return res, nil
}

// markFootprint marks every link traversed by any of d's tunnels.
// This over-approximates the links whose residual capacity an admit of
// d can change (allocation is zero on some tunnels), which keeps the
// disjointness test sound.
func markFootprint(in *alloc.Input, d *demand.Demand, touched []bool) {
	for pi := range d.Pairs {
		for _, t := range in.TunnelsFor(d, pi) {
			for _, e := range t.Links {
				touched[e] = true
			}
		}
	}
}

// footprintDisjoint reports whether none of d's tunnel links has been
// touched by an earlier in-batch admit.
func footprintDisjoint(in *alloc.Input, d *demand.Demand, touched []bool) bool {
	for pi := range d.Pairs {
		for _, t := range in.TunnelsFor(d, pi) {
			for _, e := range t.Links {
				if touched[e] {
					return false
				}
			}
		}
	}
	return true
}
