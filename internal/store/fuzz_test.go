package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"bate/internal/chaos"
	"bate/internal/demand"
	"bate/internal/topo"
)

// FuzzWALRecord throws arbitrary bytes at the WAL record parser: it
// must never panic, must classify every stream as clean / torn /
// corrupt, and on valid records must round-trip through encodeRecord
// byte-for-byte. CI runs this as a short -fuzz smoke on every push.
func FuzzWALRecord(f *testing.F) {
	n := topo.Testbed()
	// Seed corpus: one valid record of each type, a concatenation, and
	// classic mutations.
	var db bytes.Buffer
	d := &demand.Demand{ID: 1, Target: 0.99,
		Pairs: []demand.PairDemand{{Src: 0, Dst: 2, Bandwidth: 400}}}
	if err := demand.Save(&db, n, []*demand.Demand{d}); err != nil {
		f.Fatal(err)
	}
	seeds := [][]byte{}
	admit, _ := encodeRecord(RecAdmit, []byte(`{"demand":`+db.String()+`,"alloc":[[400,0]]}`))
	withdraw, _ := encodeRecord(RecWithdraw, []byte(`{"id":1}`))
	link, _ := encodeRecord(RecLink, []byte(`{"src":"DC1","dst":"DC4","up":false}`))
	epoch, _ := encodeRecord(RecEpoch, []byte(`{"epoch":12}`))
	sched, _ := encodeRecord(RecSchedule, []byte(`{"alloc":{"1":[[100,300]]}}`))
	seeds = append(seeds, admit, withdraw, link, epoch, sched,
		append(append([]byte{}, admit...), withdraw...), // two records
		admit[:len(admit)-3],                            // torn tail
		flipLastByte(admit),                             // checksum mismatch
		[]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},      // absurd length
		[]byte{})
	// Chaos-generated crash shapes: the deterministic torn/short-write
	// streams the fault injector produces on disk (torn tails, partial
	// frame then retry, zeroed tails, interior flips, doubled records).
	for _, seed := range []int64{1, 7, 42} {
		seeds = append(seeds, chaos.TornWALArtifacts(seed, [][]byte{admit, withdraw, link, epoch, sched})...)
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		size := int64(len(data))
		r := bufio.NewReader(bytes.NewReader(data))
		offset := int64(0)
		for {
			rt, body, err := readRecord(r, offset, size)
			if err == io.EOF || err == errTorn {
				return
			}
			if err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("parser returned untyped error %v", err)
				}
				return
			}
			// A record the parser accepted must re-encode to the exact
			// bytes it was read from.
			reenc, err := encodeRecord(rt, body)
			if err != nil {
				t.Fatalf("re-encode of accepted record: %v", err)
			}
			end := offset + int64(len(reenc))
			if end > size || !bytes.Equal(reenc, data[offset:end]) {
				t.Fatalf("record at %d does not round-trip", offset)
			}
			// Applying an accepted record must never panic; decode
			// failures (valid frame, junk JSON) surface as errors.
			_ = applyRecord(NewState(), n, rt, body)
			offset = end
		}
	})
}

// FuzzWALRecordLength pins the frame layout: the length prefix is
// payload-only and big-endian (a regression here silently corrupts
// every store on upgrade).
func FuzzWALRecordLength(f *testing.F) {
	f.Add([]byte(`{"id":3}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		frame, err := encodeRecord(RecWithdraw, body)
		if err != nil {
			if len(body)+2 <= MaxRecord {
				t.Fatalf("encode refused a legal body: %v", err)
			}
			return
		}
		if got := binary.BigEndian.Uint32(frame[0:4]); int(got) != len(body)+2 {
			t.Fatalf("length prefix %d, want %d", got, len(body)+2)
		}
	})
}
