package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/topo"
)

// snapshotVersion is the snapshot.json format version.
const snapshotVersion = 1

// State is the controller state the store persists and restores: the
// full demand book, the installed allocation, observed link failures,
// the broker-push epoch and the next demand id to hand out.
type State struct {
	Demands  map[int]*demand.Demand
	Current  alloc.Allocation
	LinkDown map[topo.LinkID]bool
	Epoch    uint64
	NextID   int
}

// NewState returns an empty, non-nil state.
func NewState() *State {
	return &State{
		Demands:  make(map[int]*demand.Demand),
		Current:  alloc.Allocation{},
		LinkDown: make(map[topo.LinkID]bool),
	}
}

// snapshotFile is the on-disk snapshot. The demand set reuses the
// demand.Save workload encoding (name-based node references) so a
// snapshot stays meaningful across processes and is inspectable with
// the same tooling as workload files; link-down entries are DC-name
// pairs for the same reason.
type snapshotFile struct {
	Version    int                    `json:"version"`
	NextID     int                    `json:"next_id"`
	Epoch      uint64                 `json:"epoch"`
	LinkDown   [][2]string            `json:"link_down,omitempty"`
	Allocation map[string][][]float64 `json:"allocation,omitempty"`
	Demands    json.RawMessage        `json:"demands"`
}

// encodeSnapshot writes st as JSON, resolving node ids via net.
func encodeSnapshot(w io.Writer, net *topo.Network, st *State) error {
	active := make([]*demand.Demand, 0, len(st.Demands))
	for _, d := range st.Demands {
		active = append(active, d)
	}
	sort.Slice(active, func(i, j int) bool { return active[i].ID < active[j].ID })
	var db bytes.Buffer
	if err := demand.Save(&db, net, active); err != nil {
		return fmt.Errorf("store: snapshot demands: %w", err)
	}
	sf := snapshotFile{
		Version: snapshotVersion,
		NextID:  st.NextID,
		Epoch:   st.Epoch,
		Demands: json.RawMessage(db.Bytes()),
	}
	for id, down := range st.LinkDown {
		if !down {
			continue
		}
		l := net.Link(id)
		sf.LinkDown = append(sf.LinkDown, [2]string{net.NodeName(l.Src), net.NodeName(l.Dst)})
	}
	sort.Slice(sf.LinkDown, func(i, j int) bool {
		if sf.LinkDown[i][0] != sf.LinkDown[j][0] {
			return sf.LinkDown[i][0] < sf.LinkDown[j][0]
		}
		return sf.LinkDown[i][1] < sf.LinkDown[j][1]
	})
	if len(st.Current) > 0 {
		sf.Allocation = allocToJSON(st.Current)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&sf)
}

// decodeSnapshot reads a snapshot back into a State.
func decodeSnapshot(r io.Reader, net *topo.Network) (*State, error) {
	var sf snapshotFile
	if err := json.NewDecoder(r).Decode(&sf); err != nil {
		return nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	if sf.Version != snapshotVersion {
		return nil, fmt.Errorf("store: snapshot version %d not supported", sf.Version)
	}
	st := NewState()
	st.NextID = sf.NextID
	st.Epoch = sf.Epoch
	if len(sf.Demands) > 0 {
		demands, err := demand.Load(bytes.NewReader(sf.Demands), net)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot demands: %w", err)
		}
		for _, d := range demands {
			if _, dup := st.Demands[d.ID]; dup {
				return nil, fmt.Errorf("store: duplicate demand id %d in snapshot", d.ID)
			}
			st.Demands[d.ID] = d
		}
	}
	for _, pair := range sf.LinkDown {
		src, ok1 := net.NodeByName(pair[0])
		dst, ok2 := net.NodeByName(pair[1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("store: snapshot link %s-%s not in topology", pair[0], pair[1])
		}
		l, ok := net.LinkBetween(src, dst)
		if !ok {
			return nil, fmt.Errorf("store: snapshot link %s-%s not in topology", pair[0], pair[1])
		}
		st.LinkDown[l.ID] = true
	}
	var err error
	st.Current, err = allocFromJSON(sf.Allocation)
	if err != nil {
		return nil, err
	}
	return st, nil
}

func allocToJSON(a alloc.Allocation) map[string][][]float64 {
	out := make(map[string][][]float64, len(a))
	for id, rows := range a {
		out[strconv.Itoa(id)] = rows
	}
	return out
}

func allocFromJSON(m map[string][][]float64) (alloc.Allocation, error) {
	a := alloc.Allocation{}
	for key, rows := range m {
		id, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("store: bad allocation key %q", key)
		}
		a[id] = rows
	}
	return a, nil
}

// clone deep-copies the state so the store and the controller never
// share mutable structures.
func (st *State) clone() *State {
	out := NewState()
	out.Epoch = st.Epoch
	out.NextID = st.NextID
	for id, d := range st.Demands {
		cp := *d
		cp.Pairs = append([]demand.PairDemand(nil), d.Pairs...)
		out.Demands[id] = &cp
	}
	out.Current = st.Current.Clone()
	for id, down := range st.LinkDown {
		if down {
			out.LinkDown[id] = true
		}
	}
	return out
}
