// Package store is the controller's durable state store (§4): a
// write-ahead log of every mutating transition plus periodic
// snapshots, so a crashed master — or a standby promoted by the Paxos
// election — reopens with the full demand book, current allocation,
// link-down set and epoch instead of an empty brain.
//
// Layout of a store directory:
//
//	snapshot.json   last compacted state (see snapshot.go)
//	wal.log         records appended since that snapshot
//
// Recovery replays snapshot + WAL tail. A torn final record (the
// kill -9 case: the process died mid-append) is truncated away; a
// corrupt interior record is a hard *CorruptError, because silently
// skipping it would replay a different history than was acked.
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// recordVersion is the WAL record format version. Bump when the
// payload encoding changes; replay rejects versions from the future.
const recordVersion = 1

// MaxRecord bounds a single WAL record payload (8 MiB). A length
// prefix beyond this is treated as corruption (or a torn tail when it
// runs past EOF), never allocated.
const MaxRecord = 8 << 20

// RecordType discriminates WAL records.
type RecordType uint8

// The mutating transitions the controller logs. Values are part of
// the on-disk format; append only.
const (
	RecAdmit    RecordType = 1 // demand admitted (demand + its allocation rows)
	RecWithdraw RecordType = 2 // demand withdrawn
	RecLink     RecordType = 3 // link up/down observed
	RecEpoch    RecordType = 4 // allocation epoch bump (push to brokers)
	RecSchedule RecordType = 5 // periodic reschedule committed (full allocation)
)

func (t RecordType) String() string {
	switch t {
	case RecAdmit:
		return "admit"
	case RecWithdraw:
		return "withdraw"
	case RecLink:
		return "link"
	case RecEpoch:
		return "epoch"
	case RecSchedule:
		return "schedule"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// CorruptError reports a WAL record whose envelope or checksum is
// invalid at a non-tail position. Recovery must not proceed past it:
// the acked history after this point cannot be reconstructed.
type CorruptError struct {
	Offset int64  // byte offset of the bad record's header
	Reason string // what failed (checksum, version, type, length)
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt WAL record at offset %d: %s", e.Offset, e.Reason)
}

// Record bodies. Demands ride in the demand.Save JSON encoding (a
// one-element array) so the WAL inherits the workload format's
// name-based node references and its validation.

type admitBody struct {
	// Demand is a demand.Save array holding exactly the admitted demand.
	Demand json.RawMessage `json:"demand"`
	// Alloc is the admission-time allocation rows for the demand
	// (pair index -> tunnel index -> Mbps), when the admission method
	// produced one.
	Alloc [][]float64 `json:"alloc,omitempty"`
}

type withdrawBody struct {
	ID int `json:"id"`
}

type linkBody struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
	Up  bool   `json:"up"`
}

type epochBody struct {
	Epoch uint64 `json:"epoch"`
}

type scheduleBody struct {
	// Alloc is the full committed allocation, demand id -> pair ->
	// tunnel -> Mbps (string keys: JSON object keys).
	Alloc map[string][][]float64 `json:"alloc"`
}

// encodeRecord frames one record: 4-byte big-endian payload length,
// 4-byte big-endian IEEE CRC32 of the payload, then the payload
// ([version][type][JSON body]).
func encodeRecord(t RecordType, body []byte) ([]byte, error) {
	payload := make([]byte, 0, 2+len(body))
	payload = append(payload, recordVersion, byte(t))
	payload = append(payload, body...)
	if len(payload) > MaxRecord {
		return nil, fmt.Errorf("store: record of %d bytes exceeds max %d", len(payload), MaxRecord)
	}
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame, nil
}

// errTorn marks a record that ends past EOF or fails its checksum at
// the very end of the log: the signature of a crash mid-append, safe
// to truncate away because it was never acked.
var errTorn = fmt.Errorf("store: torn tail record")

// readRecord reads one framed record. It returns errTorn when the
// log ends inside the record, a *CorruptError for an invalid interior
// record, and io.EOF exactly at a clean record boundary. remaining is
// the number of unread bytes after this record's declared end, so the
// caller can distinguish tail corruption (remaining == 0: torn, was
// never acked to anyone... unless fsynced, in which case the CRC would
// match) from interior corruption.
func readRecord(r *bufio.Reader, offset, size int64) (t RecordType, body []byte, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return 0, nil, errTorn // partial header at EOF
		}
		return 0, nil, err
	}
	n := int64(binary.BigEndian.Uint32(hdr[0:4]))
	want := binary.BigEndian.Uint32(hdr[4:8])
	if n < 2 || n > MaxRecord {
		if offset+8+n > size {
			// Declared end runs past EOF: indistinguishable from a torn
			// length prefix.
			return 0, nil, errTorn
		}
		return 0, nil, &CorruptError{Offset: offset, Reason: fmt.Sprintf("bad length %d", n)}
	}
	if offset+8+n > size {
		return 0, nil, errTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, errTorn
	}
	if crc32.ChecksumIEEE(payload) != want {
		if offset+8+n == size {
			// Checksum failure on the final record: a partially flushed
			// page from the fatal crash, not interior rot.
			return 0, nil, errTorn
		}
		return 0, nil, &CorruptError{Offset: offset, Reason: "checksum mismatch"}
	}
	if payload[0] != recordVersion {
		return 0, nil, &CorruptError{Offset: offset, Reason: fmt.Sprintf("unknown record version %d", payload[0])}
	}
	t = RecordType(payload[1])
	if t < RecAdmit || t > RecSchedule {
		return 0, nil, &CorruptError{Offset: offset, Reason: fmt.Sprintf("unknown record type %d", uint8(t))}
	}
	return t, payload[2:], nil
}
