package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/metrics"
	"bate/internal/topo"
)

// File names inside a store directory.
const (
	snapshotName = "snapshot.json"
	walName      = "wal.log"
)

var (
	mAppends   = metrics.NewCounter("store.appends")
	mFsyncs    = metrics.NewCounter("store.fsyncs")
	mReplayed  = metrics.NewCounter("store.replayed_records")
	mTruncated = metrics.NewCounter("store.truncated_tails")
	mCompacts  = metrics.NewCounter("store.compactions")
	mRepairs   = metrics.NewCounter("store.append_repairs")
)

// File is the WAL backing-file contract: what Store needs from
// *os.File, as an interface so tests (and the chaos fault injector)
// can substitute a faulty implementation.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// Options tunes a Store.
type Options struct {
	// NoSync disables the fsync after every append. The default
	// (sync-per-append) is the §4 durability contract: a record is on
	// stable storage before the client is acked. NoSync trades that for
	// throughput — acceptable for simulations and tests, not for a
	// production master.
	NoSync bool
	// Logf receives diagnostics; nil uses the standard logger.
	Logf func(string, ...interface{})
	// OpenWAL opens the WAL backing file; nil uses os.OpenFile. Fault
	// injection hooks in here.
	OpenWAL func(path string) (File, error)
}

// Store is a durable controller state store: snapshot.json plus a
// write-ahead log of every mutating transition since. Safe for
// concurrent use.
type Store struct {
	dir  string
	net  *topo.Network
	opts Options
	logf func(string, ...interface{})

	mu         sync.Mutex
	wal        File
	walRecords int   // records in the current WAL (replayed + appended)
	tail       int64 // offset of the last durable byte in the WAL
	restored   *State
	closed     bool
	wedged     bool // tail repair failed; WAL interior may be corrupt
}

// Open opens (creating if necessary) the store in dir, replaying
// snapshot + WAL into the restored state. A torn final WAL record —
// the signature of a crash mid-append — is truncated away; corrupt
// interior records abort with a *CorruptError. Node references are
// resolved against net, which must match the topology the records
// were written under.
func Open(dir string, net *topo.Network, opts Options) (*Store, error) {
	if net == nil {
		return nil, fmt.Errorf("store: network is required")
	}
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st := NewState()
	if f, err := os.Open(filepath.Join(dir, snapshotName)); err == nil {
		st, err = decodeSnapshot(f, net)
		f.Close()
		if err != nil {
			return nil, err
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}

	openWAL := opts.OpenWAL
	if openWAL == nil {
		openWAL = func(path string) (File, error) {
			return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		}
	}
	wal, err := openWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, net: net, opts: opts, logf: logf, wal: wal}
	replayed, tail, torn, err := s.replay(st)
	if err != nil {
		wal.Close()
		return nil, err
	}
	if torn {
		if err := wal.Truncate(tail); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: truncate torn tail: %w", err)
		}
		mTruncated.Inc()
		logf("store: truncated torn WAL tail at offset %d", tail)
	}
	end, err := wal.Seek(0, io.SeekEnd)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.tail = end
	s.walRecords = replayed
	deriveNextID(st)
	s.restored = st
	mReplayed.Add(int64(replayed))
	return s, nil
}

// replay applies every WAL record to st, returning the number of
// records applied, the clean tail offset, and whether a torn final
// record must be truncated.
func (s *Store) replay(st *State) (replayed int, tail int64, torn bool, err error) {
	info, err := s.wal.Stat()
	if err != nil {
		return 0, 0, false, fmt.Errorf("store: %w", err)
	}
	size := info.Size()
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return 0, 0, false, fmt.Errorf("store: %w", err)
	}
	r := bufio.NewReader(s.wal)
	offset := int64(0)
	for {
		t, body, err := readRecord(r, offset, size)
		if err == io.EOF {
			return replayed, offset, false, nil
		}
		if err == errTorn {
			return replayed, offset, true, nil
		}
		if err != nil {
			return 0, 0, false, err
		}
		if err := applyRecord(st, s.net, t, body); err != nil {
			return 0, 0, false, &CorruptError{Offset: offset, Reason: err.Error()}
		}
		offset += 8 + 2 + int64(len(body))
		replayed++
	}
}

// deriveNextID resumes the id allocator past every replayed demand id
// (id 0 is the wire sentinel for "unassigned" and is never handed
// out), so a recovered master cannot re-issue a live id.
func deriveNextID(st *State) {
	next := st.NextID
	for id := range st.Demands {
		if c := (id + 1) % (1 << 12); idDistance(next, c) > 0 {
			next = c
		}
	}
	if next <= 0 || next >= 1<<12 {
		next = 1
	}
	st.NextID = next
}

// idDistance reports how far ahead b is of a in the 12-bit id ring;
// positive means b is ahead.
func idDistance(a, b int) int {
	d := (b - a) % (1 << 12)
	if d < 0 {
		d += 1 << 12
	}
	if d > 1<<11 {
		d -= 1 << 12
	}
	return d
}

// applyRecord mutates st with one replayed record. Unknown DC names
// in link records are tolerated (topology drift between runs); every
// other decoding failure is reported as corruption by the caller.
func applyRecord(st *State, net *topo.Network, t RecordType, body []byte) error {
	switch t {
	case RecAdmit:
		var b admitBody
		if err := json.Unmarshal(body, &b); err != nil {
			return err
		}
		ds, err := demand.Load(bytes.NewReader(b.Demand), net)
		if err != nil {
			return err
		}
		if len(ds) != 1 {
			return fmt.Errorf("admit record holds %d demands, want 1", len(ds))
		}
		d := ds[0]
		st.Demands[d.ID] = d
		if b.Alloc != nil {
			st.Current[d.ID] = b.Alloc
		}
	case RecWithdraw:
		var b withdrawBody
		if err := json.Unmarshal(body, &b); err != nil {
			return err
		}
		delete(st.Demands, b.ID)
		delete(st.Current, b.ID)
	case RecLink:
		var b linkBody
		if err := json.Unmarshal(body, &b); err != nil {
			return err
		}
		src, ok1 := net.NodeByName(b.Src)
		dst, ok2 := net.NodeByName(b.Dst)
		if !ok1 || !ok2 {
			return nil
		}
		l, ok := net.LinkBetween(src, dst)
		if !ok {
			return nil
		}
		if b.Up {
			delete(st.LinkDown, l.ID)
		} else {
			st.LinkDown[l.ID] = true
		}
	case RecEpoch:
		var b epochBody
		if err := json.Unmarshal(body, &b); err != nil {
			return err
		}
		st.Epoch = b.Epoch
	case RecSchedule:
		var b scheduleBody
		if err := json.Unmarshal(body, &b); err != nil {
			return err
		}
		a, err := allocFromJSON(b.Alloc)
		if err != nil {
			return err
		}
		st.Current = a
	default:
		return fmt.Errorf("unknown record type %d", uint8(t))
	}
	return nil
}

// Restored returns a deep copy of the state recovered by Open. The
// caller owns the copy; later appends do not update it.
func (s *Store) Restored() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restored.clone()
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// WALRecords returns the number of records in the current WAL
// (replayed plus appended since Open or the last Compact).
func (s *Store) WALRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecords
}

// append frames, writes and (unless NoSync) fsyncs one record. It
// returns only after the record is durable, which is what lets the
// controller ack the client afterwards.
//
// On a failed or short write — or a failed fsync, whose bytes cannot
// be trusted durable — the WAL is truncated back to the last known
// durable tail before the error is returned. Without that repair a
// retried append would land after a partial frame, turning a
// recoverable torn tail into interior corruption that replay rejects.
// If the repair itself fails the store wedges: every later append
// fails fast rather than risk compounding the damage.
func (s *Store) append(t RecordType, body interface{}) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("store: marshal %s: %w", t, err)
	}
	frame, err := encodeRecord(t, data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.wedged {
		return fmt.Errorf("store: wedged after failed tail repair")
	}
	if _, err := s.wal.Write(frame); err != nil {
		s.repairTailLocked()
		return fmt.Errorf("store: append %s: %w", t, err)
	}
	if !s.opts.NoSync {
		if err := s.wal.Sync(); err != nil {
			s.repairTailLocked()
			return fmt.Errorf("store: fsync: %w", err)
		}
		mFsyncs.Inc()
	}
	s.tail += int64(len(frame))
	s.walRecords++
	mAppends.Inc()
	return nil
}

// repairTailLocked rolls the WAL back to the last durable record
// boundary after a failed append, so the caller can retry safely.
// Requires s.mu.
func (s *Store) repairTailLocked() {
	if err := s.wal.Truncate(s.tail); err != nil {
		s.wedged = true
		s.logf("store: WEDGED: tail repair truncate to %d failed: %v", s.tail, err)
		return
	}
	if _, err := s.wal.Seek(s.tail, io.SeekStart); err != nil {
		s.wedged = true
		s.logf("store: WEDGED: tail repair seek to %d failed: %v", s.tail, err)
		return
	}
	mRepairs.Inc()
	s.logf("store: rolled WAL back to durable tail at %d after failed append", s.tail)
}

// Wedged reports whether a failed tail repair has disabled appends.
func (s *Store) Wedged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wedged
}

// AppendAdmit logs an admitted demand and its admission-time
// allocation rows (nil when the admission method produced none).
func (s *Store) AppendAdmit(d *demand.Demand, rows [][]float64) error {
	var db bytes.Buffer
	if err := demand.Save(&db, s.net, []*demand.Demand{d}); err != nil {
		return fmt.Errorf("store: encode demand %d: %w", d.ID, err)
	}
	return s.append(RecAdmit, &admitBody{Demand: db.Bytes(), Alloc: rows})
}

// AppendWithdraw logs a demand withdrawal.
func (s *Store) AppendWithdraw(id int) error {
	return s.append(RecWithdraw, &withdrawBody{ID: id})
}

// AppendLink logs an observed link state change.
func (s *Store) AppendLink(src, dst string, up bool) error {
	return s.append(RecLink, &linkBody{Src: src, Dst: dst, Up: up})
}

// AppendEpoch logs an allocation epoch bump.
func (s *Store) AppendEpoch(epoch uint64) error {
	return s.append(RecEpoch, &epochBody{Epoch: epoch})
}

// AppendSchedule logs a committed reschedule: the full allocation
// replaces whatever replay built up so far.
func (s *Store) AppendSchedule(a alloc.Allocation) error {
	return s.append(RecSchedule, &scheduleBody{Alloc: allocToJSON(a)})
}

// Compact atomically replaces the snapshot with st and trims the WAL:
// the snapshot is written to a temporary file, fsynced, renamed over
// snapshot.json, and only then is the log truncated. A crash anywhere
// in between recovers to either the old snapshot + full WAL or the
// new snapshot (+ an ignorable stale WAL suffix replayed on top of
// state it is idempotent over — records reapply the same facts).
func (s *Store) Compact(st *State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := encodeSnapshot(f, s.net, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: fsync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: install snapshot: %w", err)
	}
	syncDir(s.dir)
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: trim WAL: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.walRecords = 0
	s.tail = 0
	mCompacts.Inc()
	if !s.opts.NoSync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: fsync: %w", err)
		}
		mFsyncs.Inc()
	}
	return nil
}

// syncDir fsyncs a directory so a rename is durable; best-effort
// (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close releases the WAL file handle. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}

// Summary describes a store directory without opening it for writes;
// batectl store inspect prints it.
type Summary struct {
	Dir              string
	SnapshotBytes    int64 // -1 when no snapshot exists
	SnapshotDemands  int
	WALBytes         int64
	WALRecords       int
	RecordsByType    map[RecordType]int
	TornTail         bool
	Demands          int // demands after full replay
	NextID           int
	Epoch            uint64
	LinksDown        int
	AllocatedDemands int // demands with allocation rows after replay
}

// Inspect reads a store directory read-only and summarizes snapshot,
// WAL and replayed state. A torn tail is reported, not repaired.
func Inspect(dir string, net *topo.Network) (*Summary, error) {
	sum := &Summary{Dir: dir, SnapshotBytes: -1, RecordsByType: make(map[RecordType]int)}
	st := NewState()
	if f, err := os.Open(filepath.Join(dir, snapshotName)); err == nil {
		info, _ := f.Stat()
		sum.SnapshotBytes = info.Size()
		st, err = decodeSnapshot(f, net)
		f.Close()
		if err != nil {
			return nil, err
		}
		sum.SnapshotDemands = len(st.Demands)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.Open(filepath.Join(dir, walName))
	if err != nil {
		if os.IsNotExist(err) {
			fillSummary(sum, st)
			return sum, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sum.WALBytes = info.Size()
	r := bufio.NewReader(f)
	offset := int64(0)
	for {
		t, body, err := readRecord(r, offset, info.Size())
		if err == io.EOF {
			break
		}
		if err == errTorn {
			sum.TornTail = true
			break
		}
		if err != nil {
			return nil, err
		}
		if err := applyRecord(st, net, t, body); err != nil {
			return nil, &CorruptError{Offset: offset, Reason: err.Error()}
		}
		offset += 8 + 2 + int64(len(body))
		sum.WALRecords++
		sum.RecordsByType[t]++
	}
	deriveNextID(st)
	fillSummary(sum, st)
	return sum, nil
}

func fillSummary(sum *Summary, st *State) {
	sum.Demands = len(st.Demands)
	sum.NextID = st.NextID
	sum.Epoch = st.Epoch
	for _, down := range st.LinkDown {
		if down {
			sum.LinksDown++
		}
	}
	for id := range st.Current {
		if _, ok := st.Demands[id]; ok {
			sum.AllocatedDemands++
		}
	}
}
