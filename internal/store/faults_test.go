package store

import (
	"errors"
	"testing"

	"bate/internal/chaos"
	"bate/internal/topo"
)

// chaosOpts wires the chaos disk front into a store.
func chaosOpts(fs *chaos.FS, noSync bool) Options {
	return Options{
		NoSync:  noSync,
		Logf:    silent,
		OpenWAL: func(path string) (File, error) { return fs.OpenWAL(path) },
	}
}

// appendRetry retries an append after injected failures. A single
// fail-every-N front (N >= 2) never fails twice running, but the
// write and sync cadences are independent, so one attempt can lose to
// each in turn — three attempts always suffice.
func appendRetry(t *testing.T, do func() error) (failures int) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		err := do()
		if err == nil {
			return failures
		}
		if !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("append failed with non-injected error: %v", err)
		}
		failures++
		if attempt >= 2 {
			t.Fatalf("append still failing after %d attempts: %v", attempt+1, err)
		}
	}
}

func TestShortWriteRepairedAndRetried(t *testing.T) {
	n := topo.Testbed()
	dir := t.TempDir()
	fs := chaos.NewFS(chaos.FSConfig{WriteEveryN: 2})
	s, err := Open(dir, n, chaosOpts(fs, true))
	if err != nil {
		t.Fatal(err)
	}

	const demands = 6
	totalFailures := 0
	for id := 1; id <= demands; id++ {
		d := mkDemand(t, n, id, "DC1", "DC3", float64(100*id), 0.99)
		totalFailures += appendRetry(t, func() error { return s.AppendAdmit(d, nil) })
	}
	if totalFailures == 0 {
		t.Fatal("no short writes injected; the fault front is not wired in")
	}
	if s.Wedged() {
		t.Fatal("store wedged; tail repair should have recovered every failure")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen clean: every retried append must replay exactly once, and
	// no partial frame may have survived as interior corruption.
	s2, err := Open(dir, n, testOpts())
	if err != nil {
		t.Fatalf("reopen after repaired short writes: %v", err)
	}
	defer s2.Close()
	st := s2.Restored()
	if len(st.Demands) != demands {
		t.Fatalf("replayed %d demands, want %d", len(st.Demands), demands)
	}
	if s2.WALRecords() != demands {
		t.Fatalf("WAL holds %d records, want %d (duplicates would mean the rollback missed)", s2.WALRecords(), demands)
	}
}

func TestSyncErrorRepairedAndRetried(t *testing.T) {
	n := topo.Testbed()
	dir := t.TempDir()
	fs := chaos.NewFS(chaos.FSConfig{SyncEveryN: 3})
	s, err := Open(dir, n, chaosOpts(fs, false))
	if err != nil {
		t.Fatal(err)
	}

	const demands = 7
	totalFailures := 0
	for id := 1; id <= demands; id++ {
		d := mkDemand(t, n, id, "DC2", "DC6", float64(50*id), 0.95)
		totalFailures += appendRetry(t, func() error { return s.AppendAdmit(d, nil) })
	}
	if totalFailures == 0 {
		t.Fatal("no fsync errors injected")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, n, testOpts())
	if err != nil {
		t.Fatalf("reopen after repaired fsync failures: %v", err)
	}
	defer s2.Close()
	if got := len(s2.Restored().Demands); got != demands {
		t.Fatalf("replayed %d demands, want %d", got, demands)
	}
}

func TestChaosStoreFaultsCombined(t *testing.T) {
	// Both fronts at once, plus a compaction in the middle — the
	// sequence a chaos-soaked controller drives.
	n := topo.Testbed()
	dir := t.TempDir()
	fs := chaos.NewFS(chaos.FSConfig{WriteEveryN: 3, SyncEveryN: 4})
	s, err := Open(dir, n, chaosOpts(fs, false))
	if err != nil {
		t.Fatal(err)
	}
	st := NewState()
	for id := 1; id <= 5; id++ {
		d := mkDemand(t, n, id, "DC1", "DC6", float64(10*id), 0.9)
		appendRetry(t, func() error { return s.AppendAdmit(d, nil) })
		st.Demands[d.ID] = d
	}
	st.NextID = 6
	// Compact writes the snapshot through the clean os path; only the
	// WAL rides the fault front, and it is empty afterwards.
	for attempt := 0; ; attempt++ {
		err := s.Compact(st)
		if err == nil {
			break
		}
		if !errors.Is(err, chaos.ErrInjected) || attempt >= 1 {
			t.Fatalf("compact: %v", err)
		}
	}
	for id := 6; id <= 9; id++ {
		d := mkDemand(t, n, id, "DC2", "DC4", float64(10*id), 0.9)
		appendRetry(t, func() error { return s.AppendAdmit(d, nil) })
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, n, testOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := len(s2.Restored().Demands); got != 9 {
		t.Fatalf("replayed %d demands, want 9 (1..5 from the snapshot, 6..9 from the post-compact WAL)", got)
	}
}
