package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/topo"
)

func silent(string, ...interface{}) {}

func testOpts() Options { return Options{NoSync: true, Logf: silent} }

func dcID(t *testing.T, n *topo.Network, name string) topo.NodeID {
	t.Helper()
	id, ok := n.NodeByName(name)
	if !ok {
		t.Fatalf("unknown DC %s", name)
	}
	return id
}

func mkDemand(t *testing.T, n *topo.Network, id int, src, dst string, bw, target float64) *demand.Demand {
	t.Helper()
	return &demand.Demand{
		ID:     id,
		Pairs:  []demand.PairDemand{{Src: dcID(t, n, src), Dst: dcID(t, n, dst), Bandwidth: bw}},
		Target: target, Charge: bw, RefundFrac: 0.1,
	}
}

func TestOpenEmpty(t *testing.T) {
	n := topo.Testbed()
	s, err := Open(t.TempDir(), n, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Restored()
	if len(st.Demands) != 0 || len(st.Current) != 0 || st.Epoch != 0 {
		t.Fatalf("fresh store restored non-empty state: %+v", st)
	}
	if st.NextID != 1 {
		t.Fatalf("fresh store next id %d, want 1 (0 is the wire sentinel)", st.NextID)
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	n := topo.Testbed()
	dir := t.TempDir()
	s, err := Open(dir, n, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	d1 := mkDemand(t, n, 1, "DC1", "DC3", 400, 0.99)
	d2 := mkDemand(t, n, 2, "DC2", "DC6", 300, 0.95)
	rows := [][]float64{{100, 300, 0, 0}}
	if err := s.AppendAdmit(d1, rows); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAdmit(d2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEpoch(7); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLink("DC1", "DC4", false); err != nil {
		t.Fatal(err)
	}
	full := alloc.Allocation{1: {{50, 350, 0, 0}}, 2: {{300, 0, 0, 0}}}
	if err := s.AppendSchedule(full); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAdmit(mkDemand(t, n, 3, "DC1", "DC6", 100, 0.9), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendWithdraw(2); err != nil {
		t.Fatal(err)
	}
	if got := s.WALRecords(); got != 7 {
		t.Fatalf("WALRecords = %d, want 7", got)
	}
	s.Close()

	s2, err := Open(dir, n, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Restored()
	if len(st.Demands) != 2 {
		t.Fatalf("replayed %d demands, want 2 (ids 1, 3)", len(st.Demands))
	}
	if st.Demands[2] != nil {
		t.Fatal("withdrawn demand 2 survived replay")
	}
	if got := st.Demands[1]; got == nil || got.Target != 0.99 || got.Pairs[0].Bandwidth != 400 {
		t.Fatalf("demand 1 replayed wrong: %+v", got)
	}
	if st.Epoch != 7 {
		t.Fatalf("epoch %d, want 7", st.Epoch)
	}
	link, _ := n.LinkBetween(dcID(t, n, "DC1"), dcID(t, n, "DC4"))
	if !st.LinkDown[link.ID] {
		t.Fatal("link-down fact lost in replay")
	}
	// Schedule replaced the allocation; withdraw removed id 2's rows.
	want := alloc.Allocation{1: {{50, 350, 0, 0}}}
	if !reflect.DeepEqual(st.Current, want) {
		t.Fatalf("allocation = %v, want %v", st.Current, want)
	}
	// NextID resumes past the max replayed id.
	if st.NextID != 4 {
		t.Fatalf("next id %d, want 4", st.NextID)
	}
}

func TestLinkRepairReplays(t *testing.T) {
	n := topo.Testbed()
	dir := t.TempDir()
	s, _ := Open(dir, n, testOpts())
	s.AppendLink("DC1", "DC4", false)
	s.AppendLink("DC2", "DC5", false)
	s.AppendLink("DC1", "DC4", true)
	s.Close()
	s2, err := Open(dir, n, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Restored()
	l14, _ := n.LinkBetween(dcID(t, n, "DC1"), dcID(t, n, "DC4"))
	l25, _ := n.LinkBetween(dcID(t, n, "DC2"), dcID(t, n, "DC5"))
	if st.LinkDown[l14.ID] {
		t.Fatal("repaired link still down after replay")
	}
	if !st.LinkDown[l25.ID] {
		t.Fatal("failed link not down after replay")
	}
}

func TestTornTailTruncated(t *testing.T) {
	n := topo.Testbed()
	dir := t.TempDir()
	s, _ := Open(dir, n, testOpts())
	if err := s.AppendAdmit(mkDemand(t, n, 1, "DC1", "DC3", 400, 0.99), nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	walPath := filepath.Join(dir, walName)
	clean, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Three kill -9 signatures: partial header, full header + partial
	// payload, and full payload with a garbage checksum at EOF.
	second, err := encodeRecord(RecWithdraw, []byte(`{"id":1}`))
	if err != nil {
		t.Fatal(err)
	}
	for _, torn := range [][]byte{
		second[:3],             // mid-header
		second[:len(second)-2], // mid-payload
		flipLastByte(second),   // full length, corrupted bytes at tail
	} {
		f, _ := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
		f.Write(torn)
		f.Close()

		s2, err := Open(dir, n, testOpts())
		if err != nil {
			t.Fatalf("open with torn tail %d bytes: %v", len(torn), err)
		}
		st := s2.Restored()
		if len(st.Demands) != 1 || st.Demands[1] == nil {
			t.Fatalf("torn tail corrupted replayed state: %+v", st.Demands)
		}
		s2.Close()
		got, _ := os.ReadFile(walPath)
		if !bytes.Equal(got, clean) {
			t.Fatalf("torn tail not truncated: %d bytes, want %d", len(got), len(clean))
		}
	}
}

func flipLastByte(b []byte) []byte {
	out := append([]byte(nil), b...)
	out[len(out)-1] ^= 0xff
	return out
}

func TestCorruptInteriorRejected(t *testing.T) {
	n := topo.Testbed()
	dir := t.TempDir()
	s, _ := Open(dir, n, testOpts())
	s.AppendAdmit(mkDemand(t, n, 1, "DC1", "DC3", 400, 0.99), nil)
	s.AppendWithdraw(1)
	s.Close()

	walPath := filepath.Join(dir, walName)
	data, _ := os.ReadFile(walPath)
	// Flip a byte inside the FIRST record's payload: interior
	// corruption, not a tail artifact.
	data[12] ^= 0xff
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, n, testOpts())
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("open over corrupt interior: err = %v, want *CorruptError", err)
	}
	if ce.Offset != 0 {
		t.Fatalf("corrupt offset %d, want 0", ce.Offset)
	}
}

func TestCompact(t *testing.T) {
	n := topo.Testbed()
	dir := t.TempDir()
	s, _ := Open(dir, n, testOpts())
	s.AppendAdmit(mkDemand(t, n, 1, "DC1", "DC3", 400, 0.99), [][]float64{{400, 0, 0, 0}})
	s.AppendAdmit(mkDemand(t, n, 5, "DC2", "DC6", 300, 0.95), nil)
	s.AppendEpoch(3)
	s.AppendLink("DC1", "DC4", false)

	// Restored() reflects Open-time state, not appends; reopen so the
	// compaction input carries everything appended above.
	s.Close()
	s, err := Open(dir, n, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := s.Restored()
	if err := s.Compact(st); err != nil {
		t.Fatal(err)
	}
	if got := s.WALRecords(); got != 0 {
		t.Fatalf("WAL holds %d records after compact", got)
	}
	// Appends after compaction land in the fresh WAL.
	if err := s.AppendWithdraw(5); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, n, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Restored()
	if len(got.Demands) != 1 || got.Demands[1] == nil {
		t.Fatalf("post-compact replay demands: %+v", got.Demands)
	}
	if got.Epoch != 3 {
		t.Fatalf("epoch %d, want 3", got.Epoch)
	}
	link, _ := n.LinkBetween(dcID(t, n, "DC1"), dcID(t, n, "DC4"))
	if !got.LinkDown[link.ID] {
		t.Fatal("link-down fact lost across compaction")
	}
	want := alloc.Allocation{1: {{400, 0, 0, 0}}}
	if !reflect.DeepEqual(got.Current, want) {
		t.Fatalf("allocation = %v, want %v", got.Current, want)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	n := topo.Testbed()
	st := NewState()
	st.Demands[1] = mkDemand(t, n, 1, "DC1", "DC3", 400, 0.99)
	st.Demands[9] = mkDemand(t, n, 9, "DC2", "DC6", 300, 0.95)
	st.Current = alloc.Allocation{1: {{100, 300, 0, 0}}}
	link, _ := n.LinkBetween(dcID(t, n, "DC5"), dcID(t, n, "DC6"))
	st.LinkDown[link.ID] = true
	st.Epoch = 42
	st.NextID = 10

	var buf bytes.Buffer
	if err := encodeSnapshot(&buf, n, st); err != nil {
		t.Fatal(err)
	}
	got, err := decodeSnapshot(bytes.NewReader(buf.Bytes()), n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Demands, st.Demands) {
		t.Fatalf("demands:\n got %+v\nwant %+v", got.Demands, st.Demands)
	}
	if !reflect.DeepEqual(got.Current, st.Current) {
		t.Fatalf("allocation: got %v want %v", got.Current, st.Current)
	}
	if !reflect.DeepEqual(got.LinkDown, st.LinkDown) {
		t.Fatalf("linkDown: got %v want %v", got.LinkDown, st.LinkDown)
	}
	if got.Epoch != 42 || got.NextID != 10 {
		t.Fatalf("epoch/nextID: %d/%d", got.Epoch, got.NextID)
	}
}

func TestRestoredIsACopy(t *testing.T) {
	n := topo.Testbed()
	s, _ := Open(t.TempDir(), n, testOpts())
	defer s.Close()
	a := s.Restored()
	a.Demands[99] = mkDemand(t, n, 99, "DC1", "DC2", 10, 0.9)
	a.Epoch = 5
	b := s.Restored()
	if len(b.Demands) != 0 || b.Epoch != 0 {
		t.Fatal("Restored returned a shared reference, not a copy")
	}
}

func TestInspect(t *testing.T) {
	n := topo.Testbed()
	dir := t.TempDir()
	s, _ := Open(dir, n, testOpts())
	s.AppendAdmit(mkDemand(t, n, 1, "DC1", "DC3", 400, 0.99), [][]float64{{400, 0, 0, 0}})
	s.AppendEpoch(1)
	s.Compact(s.Restored()) // snapshot exists (empty: Restored is Open-time)
	s.AppendAdmit(mkDemand(t, n, 2, "DC2", "DC6", 300, 0.95), nil)
	s.AppendWithdraw(2)
	s.Close()

	sum, err := Inspect(dir, n)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SnapshotBytes < 0 {
		t.Fatal("snapshot missing from summary")
	}
	if sum.WALRecords != 2 {
		t.Fatalf("WAL records %d, want 2", sum.WALRecords)
	}
	if sum.RecordsByType[RecAdmit] != 1 || sum.RecordsByType[RecWithdraw] != 1 {
		t.Fatalf("records by type: %v", sum.RecordsByType)
	}
	if sum.Demands != 0 {
		t.Fatalf("replayed demands %d, want 0 (compact happened before admits)", sum.Demands)
	}
	if sum.TornTail {
		t.Fatal("clean WAL reported torn")
	}

	// A torn tail shows up in the summary without being repaired.
	f, _ := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{0, 0, 0, 99, 1, 2})
	f.Close()
	sum, err = Inspect(dir, n)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.TornTail {
		t.Fatal("torn tail not reported")
	}
}

func TestOpenRejectsNilNetwork(t *testing.T) {
	if _, err := Open(t.TempDir(), nil, testOpts()); err == nil {
		t.Fatal("expected error for nil network")
	}
}

func TestDeriveNextIDWraps(t *testing.T) {
	st := NewState()
	st.Demands[4095] = &demand.Demand{ID: 4095}
	deriveNextID(st)
	if st.NextID != 1 {
		t.Fatalf("next id %d, want 1 (wrap past the 0 sentinel)", st.NextID)
	}
}
