module bate

go 1.22
