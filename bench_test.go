// Benchmarks regenerating the paper's tables and figures (one bench
// per artifact; `go test -bench=. -benchmem`) plus ablation benches
// for the design choices DESIGN.md calls out: simplex pivot rules,
// aggregated vs enumerated scheduling, admission strategies, and
// greedy vs optimal failure recovery.
package main

import (
	"io"
	"math"
	"math/rand"
	"testing"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/demand"
	"bate/internal/experiments"
	"bate/internal/lp"
	"bate/internal/partition"
	"bate/internal/routing"
	"bate/internal/scenario"
	"bate/internal/sim"
	"bate/internal/topo"
)

// benchOpts shrinks every experiment to benchmark scale.
func benchOpts() experiments.Options {
	return experiments.Options{Quick: true, Seed: 1, Repeats: 2}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkTable1Targets(b *testing.B)           { benchExperiment(b, "table1") }
func BenchmarkFig1Weibull(b *testing.B)             { benchExperiment(b, "fig1") }
func BenchmarkFig2Motivating(b *testing.B)          { benchExperiment(b, "fig2") }
func BenchmarkTable3Scheduling(b *testing.B)        { benchExperiment(b, "table3") }
func BenchmarkFig7Admission(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFig8BwRatioCDF(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9Availability(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig10LinkFailures(b *testing.B)       { benchExperiment(b, "fig10") }
func BenchmarkFig11DataLoss(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkFig12AdmissionSim(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13Satisfaction(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkFig14FixedAdmission(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15ProfitAfterFailure(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16Pruning(b *testing.B)            { benchExperiment(b, "fig16") }
func BenchmarkFig17SchedulingTime(b *testing.B)     { benchExperiment(b, "fig17") }
func BenchmarkFig18Routing(b *testing.B)            { benchExperiment(b, "fig18") }
func BenchmarkFig19Approx(b *testing.B)             { benchExperiment(b, "fig19") }
func BenchmarkFig20FailureTime(b *testing.B)        { benchExperiment(b, "fig20") }

// --- Ablation benches ---

// randomLP builds a dense feasible LP for the pivot-rule ablation.
func randomLP(n, m int, seed int64) *lp.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem()
	p.SetMaximize()
	vars := make([]lp.VarID, n)
	x0 := make([]float64, n)
	for j := range vars {
		x0[j] = rng.Float64() * 10
		vars[j] = p.AddVariable("x", 0, math.Inf(1), rng.Float64())
	}
	for i := 0; i < m; i++ {
		terms := make([]lp.Term, n)
		rhs := 0.0
		for j := 0; j < n; j++ {
			c := rng.Float64()
			terms[j] = lp.Term{Var: vars[j], Coef: c}
			rhs += c * x0[j]
		}
		p.AddConstraint(lp.Constraint{Terms: terms, Op: lp.LE, RHS: rhs})
	}
	return p
}

func benchPivot(b *testing.B, rule lp.PivotRule) {
	p := randomLP(60, 40, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveOpts(lp.Options{Pivot: rule}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexPivotDantzig(b *testing.B) { benchPivot(b, lp.Dantzig) }
func BenchmarkSimplexPivotBland(b *testing.B)   { benchPivot(b, lp.Bland) }

// benchScheduleInput builds a moderate scheduling instance on the
// testbed.
func benchScheduleInput() *alloc.Input {
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	rng := rand.New(rand.NewSource(3))
	gen := demand.NewGenerator(n, demand.GeneratorConfig{
		ArrivalsPerMinute: 0.05, MeanDurationSec: 1e9, // all demands concurrent
		MinBandwidth: 20, MaxBandwidth: 60,
		Targets: []float64{0.95, 0.99, 0.999},
	}, rng)
	demands := gen.Generate(3600)
	return &alloc.Input{Net: n, Tunnels: ts, Demands: demands}
}

func BenchmarkScheduleAggregated(b *testing.B) {
	in := benchScheduleInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bate.Schedule(in, bate.ScheduleOptions{MaxFail: 2, Mode: bate.Aggregated}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleEnumerated(b *testing.B) {
	in := benchScheduleInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bate.Schedule(in, bate.ScheduleOptions{MaxFail: 1, Mode: bate.Enumerated}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchB4Input builds a B4-sized scheduling instance: the 12-node
// Google WAN with a workload large enough that the LP's sparsity (and
// the dense tableau's per-bound rows) dominate solve time.
func benchB4Input() *alloc.Input {
	n := topo.B4()
	ts := routing.Compute(n, routing.KShortest, 4)
	rng := rand.New(rand.NewSource(9))
	gen := demand.NewGenerator(n, demand.GeneratorConfig{
		ArrivalsPerMinute: 0.05, MeanDurationSec: 1e9, // all demands concurrent
		MinBandwidth: 20, MaxBandwidth: 60,
		Targets: []float64{0.95, 0.99, 0.999},
	}, rng)
	demands := gen.Generate(3600)
	return &alloc.Input{Net: n, Tunnels: ts, Demands: demands}
}

// BenchmarkScheduleLP compares the dense tableau against the sparse
// revised simplex on the same B4-sized scheduling LP (ISSUE 2
// acceptance: revised ≥ 2x fewer ns/op).
func BenchmarkScheduleLP(b *testing.B) {
	in := benchB4Input()
	for _, bc := range []struct {
		name   string
		engine lp.Engine
	}{{"dense", lp.EngineDense}, {"revised", lp.EngineRevised}} {
		b.Run(bc.name, func(b *testing.B) {
			pivots := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := bate.Schedule(in, bate.ScheduleOptions{MaxFail: 2, Engine: bc.engine})
				if err != nil {
					b.Fatal(err)
				}
				pivots += stats.Iterations
			}
			b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
		})
	}
}

// benchB4RecoveryInput builds a contended B4 recovery instance: fewer
// but much larger demands than benchB4Input, so failing a well-loaded
// link leaves a fractional root relaxation and branch & bound actually
// explores a tree (the light scheduling workload is root-integral).
func benchB4RecoveryInput() *alloc.Input {
	n := topo.B4()
	ts := routing.Compute(n, routing.KShortest, 4)
	rng := rand.New(rand.NewSource(9))
	gen := demand.NewGenerator(n, demand.GeneratorConfig{
		ArrivalsPerMinute: 0.02, MeanDurationSec: 1e9, // all demands concurrent
		MinBandwidth: 200, MaxBandwidth: 800,
		Targets: []float64{0.95, 0.99, 0.999},
	}, rng)
	return &alloc.Input{Net: n, Tunnels: ts, Demands: gen.Generate(3600)}
}

// BenchmarkMILPRecovery compares cold vs parent-basis warm-started
// branch & bound on the Eq. 12 recovery MILP over B4 (ISSUE 2
// acceptance: warm reports fewer total pivots). The node budget bounds
// the tree; both variants explore the same 64 nodes, so the pivot
// counts isolate the warm-start effect.
func BenchmarkMILPRecovery(b *testing.B) {
	in := benchB4RecoveryInput()
	failed := []topo.LinkID{6}
	for _, bc := range []struct {
		name string
		opts lp.Options
	}{
		{"cold", lp.Options{Engine: lp.EngineRevised, ColdStart: true, MaxNodes: 64}},
		{"warm", lp.Options{Engine: lp.EngineRevised, MaxNodes: 64}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			pivots := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := bate.RecoverOptimalOpts(in, failed, bc.opts)
				if err != nil {
					b.Fatal(err)
				}
				pivots += res.Iterations
			}
			b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
		})
	}
}

// Admission-strategy ablation: decision latency of the three §3.2
// strategies on the same state.
func benchAdmission(b *testing.B, decide func(*alloc.Input, []*demand.Demand, *demand.Demand) error) {
	in := benchScheduleInput()
	admitted := in.Demands[:len(in.Demands)-1]
	newcomer := in.Demands[len(in.Demands)-1]
	state := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels, Demands: admitted}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := decide(state, admitted, newcomer); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdmissionFixed(b *testing.B) {
	benchAdmission(b, func(in *alloc.Input, _ []*demand.Demand, d *demand.Demand) error {
		_, err := bate.AdmitFixed(in, alloc.New(in), d, 2)
		return err
	})
}

func BenchmarkAdmissionConjecture(b *testing.B) {
	benchAdmission(b, func(in *alloc.Input, admitted []*demand.Demand, d *demand.Demand) error {
		bate.Conjecture(in, append(append([]*demand.Demand(nil), admitted...), d))
		return nil
	})
}

func BenchmarkAdmissionOptimal(b *testing.B) {
	benchAdmission(b, func(in *alloc.Input, admitted []*demand.Demand, d *demand.Demand) error {
		_, _, err := bate.AdmitOptimal(in, admitted, d, 1)
		return err
	})
}

// Recovery ablation: greedy 2-approximation vs the exact MILP.
func benchRecoveryInput() (*alloc.Input, topo.LinkID) {
	in := benchScheduleInput()
	return in, topo.LinkID(6) // L4, the flakiest fiber
}

func BenchmarkRecoveryGreedy(b *testing.B) {
	in, link := benchRecoveryInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bate.RecoverGreedy(in, []topo.LinkID{link}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryOptimal(b *testing.B) {
	in, link := benchRecoveryInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bate.RecoverOptimal(in, []topo.LinkID{link}); err != nil {
			b.Fatal(err)
		}
	}
}

// Backup precomputation across every single-link failure (§3.4).
func BenchmarkBackupPrecompute(b *testing.B) {
	in := benchScheduleInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bate.Backups(in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel engine benches ---

// benchBatchWorkload builds a batch of concurrent arrivals on the
// testbed for the batch-admission benches.
func benchBatchWorkload() (*alloc.Input, []*demand.Demand) {
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	rng := rand.New(rand.NewSource(11))
	gen := demand.NewGenerator(n, demand.GeneratorConfig{
		ArrivalsPerMinute: 0.05, MeanDurationSec: 1e9,
		MinBandwidth: 20, MaxBandwidth: 60,
		Targets: []float64{0.9, 0.99, 0.999},
	}, rng)
	batch := gen.Generate(600)
	return &alloc.Input{Net: n, Tunnels: ts}, batch
}

// Batch admission with parallel speculation (AdmitBatch) vs the serial
// per-demand loop it must be decision-identical to. Run with
// `-cpu 1,4,8` to see the speculation speedup.
func BenchmarkAdmitBatch(b *testing.B) {
	in, batch := benchBatchWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bate.AdmitBatch(in, alloc.New(in), nil, batch, bate.BatchOptions{MaxFail: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdmitSerialLoop(b *testing.B) {
	in, batch := benchBatchWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := alloc.New(in)
		var adm []*demand.Demand
		for _, d := range batch {
			live := &alloc.Input{Net: in.Net, Tunnels: in.Tunnels, Demands: adm}
			res, err := bate.Admit(live, cur, adm, d, 2)
			if err != nil {
				b.Fatal(err)
			}
			if res.Admitted {
				cur[d.ID] = res.NewAlloc
				adm = append(adm, d)
			}
		}
	}
}

// Scenario-class cache: the exponential subset enumeration on a cold
// cache vs the memoized lookup every later round pays.
func BenchmarkClassesCold(b *testing.B) {
	in := benchScheduleInput()
	tunnels := in.AllTunnelsFor(in.Demands[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scenario.DefaultClassCache.Reset()
		if _, _, err := scenario.CachedClassesFor(in.Net, nil, tunnels, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassesWarm(b *testing.B) {
	in := benchScheduleInput()
	tunnels := in.AllTunnelsFor(in.Demands[0])
	if _, _, err := scenario.CachedClassesFor(in.Net, nil, tunnels, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit, err := scenario.CachedClassesFor(in.Net, nil, tunnels, 2); err != nil || !hit {
			b.Fatalf("want warm cache hit, got hit=%v err=%v", hit, err)
		}
	}
}

// BenchmarkSchedulePartitioned compares the global scheduling LP with
// the hierarchical decomposition on the 300-node synthetic WAN (ISSUE 7
// acceptance: >= 3x speedup at <= 2% optimality gap; the full record
// lives in BENCH_partition.json). The gap and speedup come from a
// paired measurement so they land in the benchmark output as metrics.
func BenchmarkSchedulePartitioned(b *testing.B) {
	c := experiments.PartitionCases(false)[1] // Synth300
	row, err := experiments.MeasurePartition(c, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	in := experiments.PartitionInput(c, 1)
	for _, bc := range []struct {
		name string
		part *partition.Options
	}{{"global", nil}, {"partitioned", &partition.Options{Regions: c.Regions}}} {
		b.Run(bc.name, func(b *testing.B) {
			opts := bate.ScheduleOptions{MaxFail: 2, Engine: lp.EngineRevised, Partition: bc.part}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := bate.Schedule(in, opts); err != nil {
					b.Fatal(err)
				}
			}
			if bc.part != nil {
				b.ReportMetric(row.Speedup, "speedup")
				b.ReportMetric(row.Gap*100, "gap%")
			}
		})
	}
}

// End-to-end time simulation throughput (simulated seconds per run).
func BenchmarkTimeSimSecond(b *testing.B) {
	n := topo.Testbed()
	ts := routing.Compute(n, routing.KShortest, 4)
	rng := rand.New(rand.NewSource(5))
	gen := demand.NewGenerator(n, demand.GeneratorConfig{ArrivalsPerMinute: 0.1}, rng)
	workload := gen.Generate(120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunTimeSim(sim.TimeSimConfig{
			Net: n, Tunnels: ts, Workload: workload,
			HorizonSec: 120, TE: sim.TEConfig{Kind: sim.KindBATE},
			Admission: sim.AdmitBATE, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
