// Quickstart: the paper's §2.2 motivating example in a dozen lines of
// API — build the 4-DC toy WAN, declare two bandwidth-availability
// demands, let BATE schedule them, and verify both targets are met.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/demand"
	"bate/internal/routing"
	"bate/internal/topo"
)

func main() {
	// The Fig. 2 toy WAN: two DC1→DC4 paths, one flaky (4% failures via
	// DC2), one reliable (0.1% via DC3), 10 Gbps everywhere.
	network := topo.Toy()
	tunnels := routing.Compute(network, routing.KShortest, 2)

	dc1, _ := network.NodeByName("DC1")
	dc4, _ := network.NodeByName("DC4")
	user1 := &demand.Demand{
		ID:     0,
		Pairs:  []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 6000}},
		Target: 0.99, // 6 Gbps, 99% of the time
	}
	user2 := &demand.Demand{
		ID:     1,
		Pairs:  []demand.PairDemand{{Src: dc1, Dst: dc4, Bandwidth: 12000}},
		Target: 0.90, // 12 Gbps, 90% of the time
	}
	in := &alloc.Input{Net: network, Tunnels: tunnels, Demands: []*demand.Demand{user1, user2}}

	// BATE's traffic scheduling (Eq. 7): cheapest allocation meeting
	// every bandwidth and availability target under ≤2 concurrent
	// link failures.
	allocation, stats, err := bate.Schedule(in, bate.ScheduleOptions{MaxFail: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %d demands in %v (%d LP variables)\n\n",
		len(in.Demands), stats.Elapsed.Round(0), stats.Variables)

	for _, d := range in.Demands {
		achieved, err := alloc.AchievedAvailability(in, allocation, d, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user%d: %.0f Mbps @ %.2f%% target → achieved %.4f%%\n",
			d.ID+1, d.TotalBandwidth(), d.Target*100, achieved*100)
		for ti, tun := range in.TunnelsFor(d, 0) {
			if f := allocation[d.ID][0][ti]; f > 0 {
				fmt.Printf("  %-25s %8.0f Mbps (path availability %.4f%%)\n",
					tun.Format(network), f, tun.Availability(network)*100)
			}
		}
	}
	fmt.Printf("\ntotal bandwidth reserved: %.0f Mbps (the demands sum to 18000)\n",
		allocation.Total())
}
