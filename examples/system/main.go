// System: the full §4 deployment in one process — a central controller
// and six per-DC brokers talking over real localhost TCP sessions. A
// client submits demands, the controller admits and pushes label-based
// allocations, a broker reports a link failure, and the precomputed
// backup activates.
//
// Run with: go run ./examples/system
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"bate/internal/broker"
	"bate/internal/controller"
	"bate/internal/routing"
	"bate/internal/topo"
	"bate/internal/wire"
)

func main() {
	network := topo.Testbed()
	tunnels := routing.Compute(network, routing.KShortest, 4)

	ctrl, err := controller.New(controller.Config{
		Net: network, Tunnels: tunnels, MaxFail: 2,
		SchedulePeriod: 2 * time.Second,
		Logf:           func(string, ...interface{}) {}, // quiet
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ctrl.Serve(ctx, ln)
	fmt.Printf("controller listening on %s\n", ln.Addr())

	// One broker per datacenter, each with its own TCP session.
	brokers := make(map[string]*broker.Broker)
	for i := 0; i < network.NumNodes(); i++ {
		dc := network.NodeName(topo.NodeID(i))
		b := broker.New(dc, ln.Addr().String())
		b.SetLogf(func(string, ...interface{}) {})
		brokers[dc] = b
		go b.Run(ctx)
	}
	time.Sleep(100 * time.Millisecond)

	// A client submits three demands with heterogeneous targets.
	client, err := wire.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.Send(&wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Role: "client"}})

	submit := func(src, dst string, bw, target float64) int {
		client.Send(&wire.Message{Type: wire.TypeSubmit, Submit: &wire.Submit{
			Src: src, Dst: dst, Bandwidth: bw, Target: target, Charge: bw, RefundFrac: 0.1,
		}})
		reply, err := client.Recv()
		if err != nil {
			log.Fatal(err)
		}
		r := reply.AdmitResult
		fmt.Printf("submit %s→%s %.0f Mbps @%.4g%%: admitted=%v method=%s delay=%.2fms\n",
			src, dst, bw, target*100, r.Admitted, r.Method, r.DelayMs)
		return r.DemandID
	}
	submit("DC1", "DC3", 1000, 0.995)
	submit("DC1", "DC4", 500, 0.999)
	id3 := submit("DC1", "DC5", 1500, 0.95)

	// Let the periodic scheduler run once (it also precomputes the
	// per-link failure backups).
	if err := ctrl.Reschedule(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	for _, dc := range []string{"DC1", "DC2", "DC4"} {
		fmt.Printf("broker %s: %d forwarding entries installed (epoch %d)\n",
			dc, brokers[dc].NumEntries(), brokers[dc].Epoch())
	}

	// DC1's network agent observes the direct DC1-DC4 fiber failing;
	// the controller activates the precomputed backup immediately.
	fmt.Println("\nDC1 reports link DC1→DC4 DOWN")
	_, before := ctrl.Snapshot()
	brokers["DC1"].ReportLink("DC1", "DC4", false)
	waitEpoch(ctrl, before)
	fmt.Println("backup allocation pushed to brokers")

	fmt.Println("DC1 reports link DC1→DC4 UP")
	_, mid := ctrl.Snapshot()
	brokers["DC1"].ReportLink("DC1", "DC4", true)
	waitEpoch(ctrl, mid)
	fmt.Println("scheduled allocation restored")

	// Withdraw one demand; capacity is released for future arrivals.
	client.Send(&wire.Message{Type: wire.TypeWithdraw, WithdrawID: id3})
	client.Recv()
	nd, _ := ctrl.Snapshot()
	fmt.Printf("\nwithdrew demand %d; controller now holds %d demands\n", id3, nd)
}

func waitEpoch(ctrl *controller.Controller, after uint64) {
	for i := 0; i < 100; i++ {
		if _, e := ctrl.Snapshot(); e > after {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("timed out waiting for allocation push")
}
