// Testbed: the §5.1 parallel-demand experiment — three demands with
// heterogeneous availability targets on the 6-DC testbed, scheduled by
// BATE, TEAVAR and FFC, then stress-tested under per-second link
// failures (the Table 3 / Fig. 9 setting).
//
// Run with: go run ./examples/testbed
package main

import (
	"fmt"
	"log"

	"bate/internal/alloc"
	"bate/internal/demand"
	"bate/internal/routing"
	"bate/internal/sim"
	"bate/internal/topo"
)

func main() {
	network := topo.Testbed()
	tunnels := routing.Compute(network, routing.KShortest, 4)
	name := func(s string) topo.NodeID {
		id, ok := network.NodeByName(s)
		if !ok {
			log.Fatalf("no node %s", s)
		}
		return id
	}
	demands := []*demand.Demand{
		{ID: 0, Pairs: []demand.PairDemand{{Src: name("DC1"), Dst: name("DC3"), Bandwidth: 1000}},
			Target: 0.995, Charge: 1000, RefundFrac: 0.10, Start: 0, End: 100},
		{ID: 1, Pairs: []demand.PairDemand{{Src: name("DC1"), Dst: name("DC4"), Bandwidth: 500}},
			Target: 0.999, Charge: 500, RefundFrac: 0.10, Start: 0, End: 100},
		{ID: 2, Pairs: []demand.PairDemand{{Src: name("DC1"), Dst: name("DC5"), Bandwidth: 1500}},
			Target: 0.95, Charge: 1500, RefundFrac: 0.10, Start: 0, End: 100},
	}
	in := &alloc.Input{Net: network, Tunnels: tunnels, Demands: demands}

	for _, kind := range []sim.TEKind{sim.KindBATE, sim.KindTEAVAR, sim.KindFFC} {
		cfg := sim.TEConfig{Kind: kind, TEAVARBeta: 0.999}
		a, err := cfg.Allocate(in)
		if err != nil {
			log.Fatalf("%v: %v", kind, err)
		}
		fmt.Printf("\n[%v] scheduled paths:\n", kind)
		for _, d := range demands {
			for ti, tun := range in.TunnelsFor(d, 0) {
				if f := a[d.ID][0][ti]; f > 0.5 {
					fmt.Printf("  demand-%d (%.4g%%)  %-28s %7.0f Mbps\n",
						d.ID+1, d.Target*100, tun.Format(network), f)
				}
			}
		}
		// Stress under the testbed's per-second failure emulation,
		// averaged over repeated 100 s runs.
		const repeats = 20
		sat := make([]float64, len(demands))
		for rep := 0; rep < repeats; rep++ {
			res, err := sim.RunTimeSim(sim.TimeSimConfig{
				Net: network, Tunnels: tunnels, Workload: demands,
				HorizonSec: 100, ScheduleEverySec: 100,
				TE: cfg, Admission: sim.AdmitNone, Seed: int64(rep) + 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			for _, o := range res.Outcomes {
				sat[o.ID] += o.Availability / repeats
			}
		}
		for i, d := range demands {
			verdict := "MET"
			if sat[i] < d.Target {
				verdict = "VIOLATED"
			}
			fmt.Printf("  demand-%d availability over %d runs: %.2f%% (target %.4g%%) %s\n",
				i+1, repeats, sat[i]*100, d.Target*100, verdict)
		}
	}
}
