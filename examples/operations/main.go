// Operations: the operator-facing tooling around the core algorithms —
// portable workload files, replaying a measured outage trace against a
// schedule, pricing link-capacity upgrades with LP shadow prices,
// checking an advance reservation against the future booking timeline,
// and the stop-the-master failover drill with the durable store.
//
// Run with: go run ./examples/operations
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"strings"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/controller"
	"bate/internal/demand"
	"bate/internal/routing"
	"bate/internal/sim"
	"bate/internal/store"
	"bate/internal/topo"
	"bate/internal/wire"
)

func main() {
	network := topo.Testbed()
	tunnels := routing.Compute(network, routing.KShortest, 4)
	dc := func(s string) topo.NodeID {
		id, _ := network.NodeByName(s)
		return id
	}

	// --- 1. Workload files -------------------------------------------------
	demands := []*demand.Demand{
		{ID: 0, Pairs: []demand.PairDemand{{Src: dc("DC1"), Dst: dc("DC3"), Bandwidth: 600}},
			Target: 0.999, Start: 0, End: 300, Charge: 600, RefundFrac: 0.1},
		{ID: 1, Pairs: []demand.PairDemand{{Src: dc("DC2"), Dst: dc("DC6"), Bandwidth: 400}},
			Target: 0.99, Start: 0, End: 300, Charge: 400, RefundFrac: 0.1},
	}
	var buf bytes.Buffer
	if err := demand.Save(&buf, network, demands); err != nil {
		log.Fatal(err)
	}
	reloaded, err := demand.Load(bytes.NewReader(buf.Bytes()), network)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload round trip: %d demands, %d JSON bytes\n", len(reloaded), buf.Len())

	// --- 2. Replay a measured outage trace ---------------------------------
	// Zero out random failures so only the scripted outage fires.
	probs := make([]float64, network.NumLinks())
	quiet, err := network.WithFailProbs(probs)
	if err != nil {
		log.Fatal(err)
	}
	quietTunnels := routing.Compute(quiet, routing.KShortest, 4)
	trace, err := sim.ParseTrace(strings.NewReader(`
# conduit cut takes the direct DC1-DC4 fiber down for 40 s
DC1 DC4 100 140
DC4 DC1 100 140
`), quiet)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.RunTimeSim(sim.TimeSimConfig{
		Net: quiet, Tunnels: quietTunnels, Workload: reloaded,
		HorizonSec: 300, ScheduleEverySec: 300,
		TE: sim.TEConfig{Kind: sim.KindBATE}, Admission: sim.AdmitNone,
		Trace: trace, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace replay: satisfaction %.2f%%, loss %.4f%% during a 40 s fiber cut\n",
		res.SatisfactionRatio()*100, res.LossRatio*100)

	// --- 3. Price capacity upgrades ----------------------------------------
	// Load the network close to saturation and ask which links are worth
	// upgrading: positive shadow price = Mbps of allocation saved per
	// extra Mbps of capacity.
	heavy := []*demand.Demand{
		{ID: 0, Pairs: []demand.PairDemand{{Src: dc("DC1"), Dst: dc("DC3"), Bandwidth: 900}}, Target: 0.99},
		{ID: 1, Pairs: []demand.PairDemand{{Src: dc("DC1"), Dst: dc("DC4"), Bandwidth: 900}}, Target: 0.99},
		{ID: 2, Pairs: []demand.PairDemand{{Src: dc("DC1"), Dst: dc("DC5"), Bandwidth: 900}}, Target: 0.95},
	}
	in := &alloc.Input{Net: network, Tunnels: tunnels, Demands: heavy}
	prices, err := bate.LinkPrices(in, bate.ScheduleOptions{MaxFail: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("link shadow prices (upgrade candidates first):")
	printed := 0
	for _, l := range network.Links() {
		if prices[l.ID] > 1e-6 {
			fmt.Printf("  %s->%s  %.4f\n",
				network.NodeName(l.Src), network.NodeName(l.Dst), prices[l.ID])
			printed++
		}
	}
	if printed == 0 {
		fmt.Println("  (no scarce links at this load)")
	}

	// --- 4. Advance reservations --------------------------------------------
	booked := []*demand.Demand{
		{ID: 10, Pairs: []demand.PairDemand{{Src: dc("DC1"), Dst: dc("DC3"), Bandwidth: 900}},
			Target: 0.95, Start: 3600, End: 7200},
	}
	tryBook := func(bw, start, end float64) {
		d := &demand.Demand{
			ID: 11, Pairs: []demand.PairDemand{{Src: dc("DC1"), Dst: dc("DC3"), Bandwidth: bw}},
			Target: 0.95, Start: start, End: end,
		}
		dec, err := bate.AdmitTimeline(in, booked, d)
		if err != nil {
			log.Fatal(err)
		}
		if dec.Admitted {
			fmt.Printf("reservation %.0f Mbps [%v, %v): ACCEPTED across %d windows\n",
				bw, start, end, len(dec.Intervals))
		} else {
			fmt.Printf("reservation %.0f Mbps [%v, %v): REFUSED (blocked in [%v, %v))\n",
				bw, start, end, dec.BlockingInterval[0], dec.BlockingInterval[1])
		}
	}
	tryBook(1500, 3000, 5000) // clashes with the booked 900 Mbps window
	tryBook(1500, 7200, 9000) // after the booking departs: fits

	// --- 5. Stop the master: durable store + standby takeover ---------------
	// The same drill an operator runs before trusting failover in
	// production: admit through master A, kill it without warning, bring
	// up standby B on the same store, and check nothing acked was lost.
	quietLog := func(string, ...interface{}) {}
	storeDir, err := os.MkdirTemp("", "bate-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)

	startMaster := func() (*controller.Controller, *store.Store, net.Listener, context.CancelFunc) {
		st, err := store.Open(storeDir, network, store.Options{NoSync: true, Logf: quietLog})
		if err != nil {
			log.Fatal(err)
		}
		ctrl, err := controller.New(controller.Config{
			Net: network, Tunnels: tunnels, MaxFail: 2, Store: st, Logf: quietLog,
		})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go ctrl.Serve(ctx, ln)
		return ctrl, st, ln, cancel
	}
	submitOne := func(addr string, s *wire.Submit) *wire.AdmitResult {
		c, err := wire.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		if err := c.Send(&wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Role: "client"}}); err != nil {
			log.Fatal(err)
		}
		if err := c.Send(&wire.Message{Type: wire.TypeSubmit, Submit: s}); err != nil {
			log.Fatal(err)
		}
		reply, err := c.Recv()
		if err != nil || reply.AdmitResult == nil {
			log.Fatalf("submit reply %+v: %v", reply, err)
		}
		return reply.AdmitResult
	}

	_, stA, lnA, cancelA := startMaster()
	var lastID int
	for _, s := range []*wire.Submit{
		{Src: "DC1", Dst: "DC3", Bandwidth: 400, Target: 0.99, Charge: 400, RefundFrac: 0.1},
		{Src: "DC2", Dst: "DC6", Bandwidth: 300, Target: 0.95, Charge: 300, RefundFrac: 0.1},
		{Src: "DC1", Dst: "DC4", Bandwidth: 200, Target: 0.999, Charge: 200, RefundFrac: 0.1},
	} {
		r := submitOne(lnA.Addr().String(), s)
		fmt.Printf("master A admitted demand %d (%s)\n", r.DemandID, r.Method)
		lastID = r.DemandID
	}

	// Kill -9: stop serving, drop the store handle, and leave a torn
	// half-written record on the WAL as a real crash mid-append would.
	cancelA()
	lnA.Close()
	stA.Close()
	wal, err := os.OpenFile(filepath.Join(storeDir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		log.Fatal(err)
	}
	wal.Write([]byte{0, 0, 0, 99, 0xba, 0xdc})
	wal.Close()
	fmt.Println("master A killed mid-append (torn WAL tail left behind)")

	// Standby takeover: in production the Paxos elector picks B and only
	// the winner opens the shared store directory.
	ctrlB, stB, lnB, cancelB := startMaster()
	defer func() { cancelB(); lnB.Close(); stB.Close() }()
	nDemands, epoch := ctrlB.Snapshot()
	fmt.Printf("standby B restored %d demands at epoch %d from %s\n",
		nDemands, epoch, filepath.Base(storeDir))

	// A client whose ack raced the crash retries with the id it was
	// assigned; B answers idempotently instead of double-booking.
	retry := submitOne(lnB.Addr().String(), &wire.Submit{
		DemandID: lastID,
		Src:      "DC1", Dst: "DC4", Bandwidth: 200, Target: 0.999, Charge: 200, RefundFrac: 0.1,
	})
	fmt.Printf("retry of demand %d on B: admitted=%v method=%s\n",
		retry.DemandID, retry.Admitted, retry.Method)
}
