// Operations: the operator-facing tooling around the core algorithms —
// portable workload files, replaying a measured outage trace against a
// schedule, pricing link-capacity upgrades with LP shadow prices, and
// checking an advance reservation against the future booking timeline.
//
// Run with: go run ./examples/operations
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"bate/internal/alloc"
	"bate/internal/bate"
	"bate/internal/demand"
	"bate/internal/routing"
	"bate/internal/sim"
	"bate/internal/topo"
)

func main() {
	network := topo.Testbed()
	tunnels := routing.Compute(network, routing.KShortest, 4)
	dc := func(s string) topo.NodeID {
		id, _ := network.NodeByName(s)
		return id
	}

	// --- 1. Workload files -------------------------------------------------
	demands := []*demand.Demand{
		{ID: 0, Pairs: []demand.PairDemand{{Src: dc("DC1"), Dst: dc("DC3"), Bandwidth: 600}},
			Target: 0.999, Start: 0, End: 300, Charge: 600, RefundFrac: 0.1},
		{ID: 1, Pairs: []demand.PairDemand{{Src: dc("DC2"), Dst: dc("DC6"), Bandwidth: 400}},
			Target: 0.99, Start: 0, End: 300, Charge: 400, RefundFrac: 0.1},
	}
	var buf bytes.Buffer
	if err := demand.Save(&buf, network, demands); err != nil {
		log.Fatal(err)
	}
	reloaded, err := demand.Load(bytes.NewReader(buf.Bytes()), network)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload round trip: %d demands, %d JSON bytes\n", len(reloaded), buf.Len())

	// --- 2. Replay a measured outage trace ---------------------------------
	// Zero out random failures so only the scripted outage fires.
	probs := make([]float64, network.NumLinks())
	quiet, err := network.WithFailProbs(probs)
	if err != nil {
		log.Fatal(err)
	}
	quietTunnels := routing.Compute(quiet, routing.KShortest, 4)
	trace, err := sim.ParseTrace(strings.NewReader(`
# conduit cut takes the direct DC1-DC4 fiber down for 40 s
DC1 DC4 100 140
DC4 DC1 100 140
`), quiet)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.RunTimeSim(sim.TimeSimConfig{
		Net: quiet, Tunnels: quietTunnels, Workload: reloaded,
		HorizonSec: 300, ScheduleEverySec: 300,
		TE: sim.TEConfig{Kind: sim.KindBATE}, Admission: sim.AdmitNone,
		Trace: trace, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace replay: satisfaction %.2f%%, loss %.4f%% during a 40 s fiber cut\n",
		res.SatisfactionRatio()*100, res.LossRatio*100)

	// --- 3. Price capacity upgrades ----------------------------------------
	// Load the network close to saturation and ask which links are worth
	// upgrading: positive shadow price = Mbps of allocation saved per
	// extra Mbps of capacity.
	heavy := []*demand.Demand{
		{ID: 0, Pairs: []demand.PairDemand{{Src: dc("DC1"), Dst: dc("DC3"), Bandwidth: 900}}, Target: 0.99},
		{ID: 1, Pairs: []demand.PairDemand{{Src: dc("DC1"), Dst: dc("DC4"), Bandwidth: 900}}, Target: 0.99},
		{ID: 2, Pairs: []demand.PairDemand{{Src: dc("DC1"), Dst: dc("DC5"), Bandwidth: 900}}, Target: 0.95},
	}
	in := &alloc.Input{Net: network, Tunnels: tunnels, Demands: heavy}
	prices, err := bate.LinkPrices(in, bate.ScheduleOptions{MaxFail: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("link shadow prices (upgrade candidates first):")
	printed := 0
	for _, l := range network.Links() {
		if prices[l.ID] > 1e-6 {
			fmt.Printf("  %s->%s  %.4f\n",
				network.NodeName(l.Src), network.NodeName(l.Dst), prices[l.ID])
			printed++
		}
	}
	if printed == 0 {
		fmt.Println("  (no scarce links at this load)")
	}

	// --- 4. Advance reservations --------------------------------------------
	booked := []*demand.Demand{
		{ID: 10, Pairs: []demand.PairDemand{{Src: dc("DC1"), Dst: dc("DC3"), Bandwidth: 900}},
			Target: 0.95, Start: 3600, End: 7200},
	}
	tryBook := func(bw, start, end float64) {
		d := &demand.Demand{
			ID: 11, Pairs: []demand.PairDemand{{Src: dc("DC1"), Dst: dc("DC3"), Bandwidth: bw}},
			Target: 0.95, Start: start, End: end,
		}
		dec, err := bate.AdmitTimeline(in, booked, d)
		if err != nil {
			log.Fatal(err)
		}
		if dec.Admitted {
			fmt.Printf("reservation %.0f Mbps [%v, %v): ACCEPTED across %d windows\n",
				bw, start, end, len(dec.Intervals))
		} else {
			fmt.Printf("reservation %.0f Mbps [%v, %v): REFUSED (blocked in [%v, %v))\n",
				bw, start, end, dec.BlockingInterval[0], dec.BlockingInterval[1])
		}
	}
	tryBook(1500, 3000, 5000) // clashes with the booked 900 Mbps window
	tryBook(1500, 7200, 9000) // after the booking departs: fits
}
