// Simulation: a scaled-down §5.2 run — Poisson BA demands on Google's
// B4 topology, scheduled by all six TE schemes, with satisfaction
// computed by post-processing over failure scenarios (the Fig. 13
// methodology).
//
// Run with: go run ./examples/simulation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bate/internal/demand"
	"bate/internal/pricing"
	"bate/internal/routing"
	"bate/internal/sim"
	"bate/internal/topo"
)

func main() {
	network := topo.B4()
	tunnels := routing.Compute(network, routing.KShortest, 4)
	fmt.Printf("simulating on %s\n", network)

	// Poisson arrivals across all 132 pairs; targets from the §5.2 set;
	// refunds from the Azure service SLAs.
	var refunds []demand.RefundChoice
	for _, s := range pricing.AzureServices {
		refunds = append(refunds, demand.RefundChoice{Service: s.Name, Frac: s.FirstTierCredit()})
	}
	rng := rand.New(rand.NewSource(42))
	gen := demand.NewGenerator(network, demand.GeneratorConfig{
		ArrivalsPerMinute: 2.0 / float64(len(network.Pairs())), // ≈2 arrivals/min network-wide
		MeanDurationSec:   600,
		MinBandwidth:      50, MaxBandwidth: 400,
		Targets: demand.SimulationTargets,
		Refunds: refunds,
	}, rng)
	const horizon = 2400.0
	workload := gen.Generate(horizon)
	fmt.Printf("%d demands over %.0f minutes\n\n", len(workload), horizon/60)

	fmt.Printf("%-8s %-10s %-14s %-10s %s\n", "scheme", "admitted", "satisfaction", "mean util", "profit after failure")
	for _, kind := range sim.AllKinds() {
		adm := sim.AdmitNone
		if kind == sim.KindBATE {
			adm = sim.AdmitBATE // BATE brings its own admission control
		}
		res, err := sim.RunEventSim(sim.EventSimConfig{
			Net: network, Tunnels: tunnels, Workload: workload,
			HorizonSec: horizon, ScheduleEverySec: 600,
			TE:        sim.TEConfig{Kind: kind, TEAVARBeta: 0.999},
			Admission: adm, MaxFail: 2, ProfitSamples: 2, Seed: 42,
		})
		if err != nil {
			log.Fatalf("%v: %v", kind, err)
		}
		profit := 0.0
		for _, pr := range res.ProfitRatios {
			profit += pr / float64(len(res.ProfitRatios))
		}
		fmt.Printf("%-8v %3d/%-6d %13.2f%% %9.2f%% %18.2f%%\n",
			kind, res.Admitted, res.Arrived,
			res.SatisfactionRatio()*100, res.MeanUtilization()*100, profit*100)
	}
}
